"""Tests for the batched multi-stream :class:`StreamEngine`.

The load-bearing property is equivalence: a 1-stream engine must be
bit-identical to the paper's Fig.-3 per-package data path (the legacy
``TimeSeriesDetector.observe`` loop), and every stream of an N-stream
engine must report the same verdicts as an independent monitor fed the
same packages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combined import (
    CombinedDetector,
    DetectorConfig,
    LEVEL_NONE,
    LEVEL_PACKAGE,
    LEVEL_TIMESERIES,
)
from repro.core.stream_engine import StreamEngine
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset

TS_CONFIG = TimeSeriesDetectorConfig(hidden_sizes=(16,), epochs=4, k=3)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetConfig(num_cycles=700), seed=5)


@pytest.fixture(scope="module")
def detector(dataset):
    built, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(timeseries=TS_CONFIG),
        rng=0,
    )
    return built


def reference_observe(detector, packages):
    """The pre-engine streaming data path, package at a time."""
    state = detector.timeseries.new_stream()
    prev_time = None
    results = []
    for package in packages:
        codes = detector.discretizer.transform_package(package, prev_time)
        prev_time = package.time
        if detector.package_detector.is_anomalous_codes(codes):
            _, state = detector.timeseries.observe(codes, state, forced_verdict=True)
            results.append((True, LEVEL_PACKAGE))
        else:
            verdict, state = detector.timeseries.observe(codes, state)
            results.append((bool(verdict), LEVEL_TIMESERIES if verdict else LEVEL_NONE))
    return results, state


class TestSingleStreamEquivalence:
    def test_n1_bit_identical_to_legacy_path(self, detector, dataset):
        """Engine at N=1 matches the per-package path bit-for-bit."""
        packages = dataset.test_packages[:550]
        assert len(packages) >= 500
        expected, final_state = reference_observe(detector, packages)

        engine = detector.engine(1)
        got = []
        for package in packages:
            anomalies, levels = engine.observe_batch([package])
            got.append((bool(anomalies[0]), int(levels[0])))
        assert got == expected

        # The recurrent state itself must be bitwise identical, not just
        # the verdicts: any float drift would compound over a long run.
        assert np.array_equal(engine._state.last_probs[0], final_state.last_probs)
        for batched, single in zip(engine._state.lstm_states, final_state.lstm_states):
            assert np.array_equal(batched.h[0], single.h[0])
            assert np.array_equal(batched.c[0], single.c[0])

    def test_stream_monitor_is_engine_backed(self, detector, dataset):
        packages = dataset.test_packages[:200]
        expected, _ = reference_observe(detector, packages)
        monitor = detector.stream()
        got = [monitor.observe(p) for p in packages]
        assert got == expected


class TestMultiStream:
    def test_streams_match_independent_monitors(self, detector, dataset):
        count, length = 4, 120
        slices = [
            dataset.test_packages[i * length : (i + 1) * length] for i in range(count)
        ]
        engine = detector.engine(count)
        per_stream = [[] for _ in range(count)]
        for t in range(length):
            anomalies, levels = engine.observe_batch([s[t] for s in slices])
            for i in range(count):
                per_stream[i].append((bool(anomalies[i]), int(levels[i])))
        for i in range(count):
            expected, _ = reference_observe(detector, slices[i])
            assert per_stream[i] == expected

    def test_levels_consistent_with_verdicts(self, detector, dataset):
        engine = detector.engine(8)
        packages = dataset.test_packages
        for t in range(40):
            batch = [packages[(i * 53 + t) % len(packages)] for i in range(8)]
            anomalies, levels = engine.observe_batch(batch)
            assert anomalies.shape == levels.shape == (8,)
            np.testing.assert_array_equal(levels != LEVEL_NONE, anomalies)
            assert set(np.unique(levels)) <= {
                LEVEL_NONE,
                LEVEL_PACKAGE,
                LEVEL_TIMESERIES,
            }

    def test_batch_size_mismatch_rejected(self, detector, dataset):
        engine = detector.engine(2)
        with pytest.raises(ValueError):
            engine.observe_batch([dataset.test_packages[0]])

    def test_empty_engine_tick(self, detector):
        engine = detector.engine(0)
        anomalies, levels = engine.observe_batch([])
        assert anomalies.shape == (0,)
        assert levels.shape == (0,)


class TestAttachDetach:
    def test_detach_preserves_other_streams(self, detector, dataset):
        """Compacting one row must not disturb the surviving streams."""
        length = 60
        slices = [
            dataset.test_packages[i * length : (i + 1) * length] for i in range(3)
        ]
        engine = detector.engine(3)
        first, second, third = engine.stream_ids
        survivors = [[], []]
        for t in range(length // 2):
            anomalies, levels = engine.observe_batch([s[t] for s in slices])
            survivors[0].append((bool(anomalies[0]), int(levels[0])))
            survivors[1].append((bool(anomalies[2]), int(levels[2])))
        engine.detach(second)
        assert engine.stream_ids == (first, third)
        for t in range(length // 2, length):
            anomalies, levels = engine.observe_batch([slices[0][t], slices[2][t]])
            survivors[0].append((bool(anomalies[0]), int(levels[0])))
            survivors[1].append((bool(anomalies[1]), int(levels[1])))
        for verdicts, packages in zip(survivors, [slices[0], slices[2]]):
            expected, _ = reference_observe(detector, packages)
            assert verdicts == expected

    def test_attached_stream_starts_fresh(self, detector, dataset):
        packages = dataset.test_packages[:80]
        engine = detector.engine(1)
        for package in packages[:40]:
            engine.observe_batch([package])
        late = engine.attach()
        verdicts = []
        for t in range(40):
            anomalies, levels = engine.observe_batch(
                {engine.stream_ids[0]: packages[40 + t], late: packages[t]}
            )
            verdicts.append((bool(anomalies[1]), int(levels[1])))
        expected, _ = reference_observe(detector, packages[:40])
        assert verdicts == expected

    def test_partial_tick_leaves_others_untouched(self, detector, dataset):
        engine = detector.engine(2)
        idle, busy = engine.stream_ids
        for t in range(5):
            is_anomaly, level = engine.observe(busy, dataset.test_packages[t])
            assert isinstance(is_anomaly, bool) and isinstance(level, int)
        assert engine.packages_seen(busy) == 5
        assert engine.packages_seen(idle) == 0

    def test_detach_unknown_stream_rejected(self, detector):
        engine = detector.engine(1)
        with pytest.raises(KeyError):
            engine.detach(999)
        with pytest.raises(KeyError):
            engine.observe(999, None)

    def test_snapshot_hands_stream_off_to_scalar_path(self, detector, dataset):
        """A snapshot continues bit-identically on the per-package path."""
        packages = dataset.test_packages[:60]
        engine = detector.engine(1)
        for package in packages[:30]:
            engine.observe_batch([package])
        state = engine.snapshot(engine.stream_ids[0])
        assert state.packages_seen == 30

        prev_time = packages[29].time
        handed_off = []
        for package in packages[30:]:
            codes = detector.discretizer.transform_package(package, prev_time)
            prev_time = package.time
            if detector.package_detector.is_anomalous_codes(codes):
                _, state = detector.timeseries.observe(codes, state, forced_verdict=True)
                handed_off.append(True)
            else:
                verdict, state = detector.timeseries.observe(codes, state)
                handed_off.append(bool(verdict))
        stayed = [
            bool(engine.observe_batch([package])[0][0]) for package in packages[30:]
        ]
        assert handed_off == stayed

    def test_snapshot_before_first_package_has_no_probs(self, detector):
        engine = detector.engine(1)
        state = engine.snapshot(engine.stream_ids[0])
        assert state.last_probs is None
        assert state.packages_seen == 0

    def test_attach_many_bulk_pads_batch(self, detector):
        engine = StreamEngine(detector)
        ids = engine.attach_many(5)
        assert engine.stream_ids == tuple(ids)
        assert engine.num_streams == 5
        assert engine.attach_many(0) == []
        with pytest.raises(ValueError):
            engine.attach_many(-1)

    def test_stream_ids_are_stable(self, detector):
        engine = StreamEngine(detector)
        first = engine.attach()
        second = engine.attach()
        engine.detach(first)
        third = engine.attach()
        assert first not in engine.stream_ids
        assert engine.stream_ids == (second, third)
        assert len({first, second, third}) == 3


class TestStats:
    def test_counters_track_observed_traffic(self, detector, dataset):
        engine = detector.engine(2)
        packages = dataset.test_packages[:40]
        alerts = 0
        for t in range(20):
            verdicts, levels = engine.observe_batch(
                [packages[2 * t], packages[2 * t + 1]]
            )
            alerts += int(verdicts.sum())
        stats = engine.stats
        assert stats.ticks == 20
        assert stats.packages == 40
        assert stats.alerts == alerts
        assert stats.package_level + stats.timeseries_level == stats.alerts

    def test_counters_survive_checkpoint_resume(self, detector, dataset):
        engine = detector.engine(1)
        for package in dataset.test_packages[:10]:
            engine.observe_batch([package])
        before = engine.stats
        resumed = StreamEngine.from_state(detector, engine.state_dict())
        assert resumed.stats == before
        resumed.observe_batch([dataset.test_packages[10]])
        assert resumed.stats.packages == before.packages + 1

    def test_pre_stats_checkpoints_resume_with_zeroed_counters(
        self, detector, dataset
    ):
        engine = detector.engine(1)
        engine.observe_batch([dataset.test_packages[0]])
        state = engine.state_dict()
        del state["stats"]  # a checkpoint written before the stats schema
        resumed = StreamEngine.from_state(detector, state)
        assert resumed.stats.packages == 0
        # The recurrent state itself still resumes bit-identically.
        verdicts_a, _ = engine.observe_batch([dataset.test_packages[1]])
        verdicts_b, _ = resumed.observe_batch([dataset.test_packages[1]])
        assert np.array_equal(verdicts_a, verdicts_b)
