"""Tests for detection metrics (Table IV / V machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    DetectionMetrics,
    confusion_counts,
    evaluate_detection,
    format_metrics_table,
    format_per_attack_table,
    per_attack_recall,
)

bool_arrays = st.lists(st.booleans(), min_size=1, max_size=100)


class TestDetectionMetrics:
    def test_paper_definitions(self):
        metrics = DetectionMetrics(
            true_positives=8, false_positives=2, true_negatives=85, false_negatives=5
        )
        assert metrics.precision == 8 / 10
        assert metrics.recall == 8 / 13
        assert metrics.accuracy == 93 / 100
        expected_f1 = 2 * metrics.precision * metrics.recall / (
            metrics.precision + metrics.recall
        )
        assert abs(metrics.f1_score - expected_f1) < 1e-12

    def test_degenerate_cases(self):
        empty = DetectionMetrics(0, 0, 0, 0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.accuracy == 0.0
        assert empty.f1_score == 0.0

    def test_as_dict_and_str(self):
        metrics = DetectionMetrics(1, 1, 1, 1)
        assert set(metrics.as_dict()) == {"precision", "recall", "accuracy", "f1_score"}
        assert "P=" in str(metrics)

    @given(bool_arrays)
    def test_property_accuracy_bounds(self, truth):
        rng = np.random.default_rng(42)
        pred = rng.random(len(truth)) > 0.5
        metrics = confusion_counts(truth, pred)
        assert 0.0 <= metrics.accuracy <= 1.0
        assert 0.0 <= metrics.f1_score <= 1.0

    @given(bool_arrays)
    def test_property_perfect_prediction(self, truth):
        metrics = confusion_counts(truth, truth)
        assert metrics.accuracy == 1.0
        if any(truth):
            assert metrics.recall == 1.0
            assert metrics.precision == 1.0


class TestConfusionCounts:
    def test_counts(self):
        truth = [True, True, False, False]
        pred = [True, False, True, False]
        metrics = confusion_counts(truth, pred)
        assert (
            metrics.true_positives,
            metrics.false_negatives,
            metrics.false_positives,
            metrics.true_negatives,
        ) == (1, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([True], [True, False])


class TestEvaluateDetection:
    def test_labels_to_binary(self):
        labels = [0, 3, 0, 7]
        pred = [False, True, True, False]
        metrics = evaluate_detection(labels, pred)
        assert metrics.true_positives == 1
        assert metrics.false_negatives == 1
        assert metrics.false_positives == 1
        assert metrics.true_negatives == 1


class TestPerAttackRecall:
    def test_slices_by_attack(self):
        labels = np.array([0, 1, 1, 2, 2, 2, 0])
        pred = np.array([False, True, False, True, True, True, True])
        ratios = per_attack_recall(labels, pred)
        assert ratios == {1: 0.5, 2: 1.0}

    def test_normal_excluded(self):
        ratios = per_attack_recall([0, 0], [True, True])
        assert ratios == {}

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_attack_recall([0, 1], [True])


class TestFormatting:
    def test_metrics_table(self):
        table = format_metrics_table({"X": DetectionMetrics(1, 1, 1, 1)})
        assert "X" in table and "Precision" in table

    def test_per_attack_table(self):
        table = format_per_attack_table({"X": {1: 0.5, 6: 1.0}})
        assert "NMRI" in table and "DoS" in table
