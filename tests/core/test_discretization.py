"""Tests for feature discretizers and the full package pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discretization import (
    CHANNEL_ORDER,
    DiscretizationConfig,
    DiscretizerNotFitted,
    EvenIntervalDiscretizer,
    FeatureDiscretizer,
    IdentityDiscretizer,
    KMeans1DDiscretizer,
    KMeansNDDiscretizer,
    intervals_of,
)
from repro.ics.dataset import generate_dataset, DatasetConfig
from repro.ics.scada import ScadaSimulator


class TestKMeans1D:
    def test_clusters_and_codes(self):
        disc = KMeans1DDiscretizer(2, rng=0).fit([0.0, 0.1, 0.05, 10.0, 10.1, 9.9])
        assert disc.transform(0.02) == disc.transform(0.08)
        assert disc.transform(10.0) != disc.transform(0.0)

    def test_out_of_range(self):
        disc = KMeans1DDiscretizer(2, rng=0).fit([0.0, 0.1, 10.0, 10.1])
        assert disc.transform(500.0) == disc.out_of_range_code

    def test_missing(self):
        disc = KMeans1DDiscretizer(2, rng=0).fit([0.0, 1.0])
        assert disc.transform(None) == disc.missing_code
        assert disc.transform(float("nan")) == disc.missing_code

    def test_num_values_accounting(self):
        disc = KMeans1DDiscretizer(2, rng=0).fit([0.0, 0.1, 10.0])
        assert disc.num_values == disc.num_regular + 2

    def test_transform_many_matches_scalar(self):
        disc = KMeans1DDiscretizer(3, rng=0).fit(list(np.linspace(0, 10, 50)))
        values = [0.5, None, 9.9, 100.0, 5.0]
        many = disc.transform_many(values)
        singles = [disc.transform(v) for v in values]
        np.testing.assert_array_equal(many, singles)

    def test_requires_fit(self):
        with pytest.raises(DiscretizerNotFitted):
            KMeans1DDiscretizer(2).transform(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans1DDiscretizer(0)
        with pytest.raises(ValueError):
            KMeans1DDiscretizer(2, margin=0.5)
        with pytest.raises(ValueError):
            KMeans1DDiscretizer(2).fit([])


class TestKMeansND:
    def test_joint_clustering(self):
        rows = [(0.0, 0.0)] * 5 + [(5.0, 5.0)] * 5
        disc = KMeansNDDiscretizer(2, rng=0).fit(rows)
        assert disc.transform((0.1, 0.1)) == disc.transform((0.0, 0.0))
        assert disc.transform((5.0, 5.0)) != disc.transform((0.0, 0.0))

    def test_out_of_range_vector(self):
        rows = [(0.0, 0.0), (0.1, 0.1), (5.0, 5.0), (5.1, 5.1)]
        disc = KMeansNDDiscretizer(2, rng=0).fit(rows)
        assert disc.transform((100.0, -100.0)) == disc.out_of_range_code

    def test_missing_component(self):
        disc = KMeansNDDiscretizer(2, rng=0).fit([(0.0, 0.0), (1.0, 1.0)])
        assert disc.transform((None, 1.0)) == disc.missing_code
        assert disc.transform(None) == disc.missing_code

    def test_standardization_balances_scales(self):
        # Second dimension has 1000x the scale; clustering must still
        # split on the first dimension's structure.
        rows = [(0.0, 1000.0), (0.0, -1000.0), (1.0, 1000.0), (1.0, -1000.0)]
        disc = KMeansNDDiscretizer(2, rng=0).fit(rows)
        codes = {disc.transform(r) for r in rows}
        assert len(codes) == 2

    def test_rejects_no_complete_rows(self):
        with pytest.raises(ValueError):
            KMeansNDDiscretizer(2).fit([(None, 1.0)])


class TestEvenInterval:
    def test_partition(self):
        disc = EvenIntervalDiscretizer(4).fit([0.0, 10.0])
        assert disc.transform(0.0) == 0
        assert disc.transform(2.6) == 1
        assert disc.transform(9.99) == 3
        assert disc.transform(10.0) == 3  # max maps to last bucket

    def test_out_of_range(self):
        disc = EvenIntervalDiscretizer(4).fit([0.0, 10.0])
        assert disc.transform(-0.1) == disc.out_of_range_code
        assert disc.transform(10.1) == disc.out_of_range_code

    def test_degenerate_range(self):
        disc = EvenIntervalDiscretizer(4).fit([5.0, 5.0])
        assert disc.transform(5.0) == 0

    def test_transform_many_matches_scalar(self):
        disc = EvenIntervalDiscretizer(7).fit(list(np.linspace(2, 8, 20)))
        values = [2.0, 8.0, None, 1.0, 9.0, 5.5]
        np.testing.assert_array_equal(
            disc.transform_many(values), [disc.transform(v) for v in values]
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 30),
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=40,
        ),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    def test_property_every_value_gets_valid_code(self, bins, train, probe):
        disc = EvenIntervalDiscretizer(bins).fit(train)
        code = disc.transform(probe)
        assert 0 <= code < disc.num_values
        if min(train) <= probe <= max(train):
            assert code < disc.num_regular  # in-range values never OOR


class TestIdentity:
    def test_vocabulary_mapping(self):
        disc = IdentityDiscretizer().fit([3, 16, 3, 16])
        assert disc.transform(3) != disc.transform(16)
        assert disc.num_regular == 2

    def test_unseen_maps_to_out_of_range(self):
        disc = IdentityDiscretizer().fit([3, 16])
        assert disc.transform(8) == disc.out_of_range_code

    def test_missing(self):
        disc = IdentityDiscretizer().fit([1])
        assert disc.transform(None) == disc.missing_code


class TestIntervalsOf:
    def test_first_interval_missing_without_prev(self):
        packages = ScadaSimulator(rng=0).run(3)
        intervals = intervals_of(packages)
        assert intervals[0] is None
        assert all(v is not None and v > 0 for v in intervals[1:])

    def test_prev_time_used(self):
        packages = ScadaSimulator(rng=0).run(1)
        intervals = intervals_of(packages, prev_time=packages[0].time - 0.5)
        assert abs(intervals[0] - 0.5) < 1e-12


class TestFeatureDiscretizer:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset = generate_dataset(DatasetConfig(num_cycles=400), seed=3)
        disc = FeatureDiscretizer(rng=0).fit(dataset.train_fragments)
        return disc, dataset

    def test_channel_order_and_cardinalities(self, fitted):
        disc, _ = fitted
        assert disc.channel_names == CHANNEL_ORDER
        assert len(disc.cardinalities) == len(CHANNEL_ORDER)
        assert all(c >= 3 for c in disc.cardinalities)

    def test_transform_sequence_shape(self, fitted):
        disc, dataset = fitted
        fragment = dataset.train_fragments[0]
        codes = disc.transform_sequence(fragment)
        assert len(codes) == len(fragment)
        assert all(len(c) == disc.num_channels for c in codes)

    def test_codes_within_cardinality(self, fitted):
        disc, dataset = fitted
        for fragment in dataset.train_fragments[:5]:
            for codes in disc.transform_sequence(fragment):
                for code, cardinality in zip(codes, disc.cardinalities):
                    assert 0 <= code < cardinality

    def test_transform_package_matches_sequence(self, fitted):
        disc, dataset = fitted
        fragment = dataset.train_fragments[0][:5]
        seq_codes = disc.transform_sequence(fragment)
        # Stream packages one at a time with explicit prev_time.
        prev = None
        for package, expected in zip(fragment, seq_codes):
            assert disc.transform_package(package, prev) == expected
            prev = package.time

    def test_unfitted_rejects_transform(self):
        with pytest.raises(DiscretizerNotFitted):
            FeatureDiscretizer().transform_sequence([])

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureDiscretizer().fit([])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DiscretizationConfig(pressure_bins=0).validate()
        with pytest.raises(ValueError):
            DiscretizationConfig(kmeans_margin=0.9).validate()


class TestTransformBatch:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset = generate_dataset(DatasetConfig(num_cycles=400), seed=3)
        disc = FeatureDiscretizer(rng=0).fit(dataset.train_fragments)
        return disc, dataset

    def test_matches_per_stream_transform_package(self, fitted):
        """Cross-stream batching must equal independent scalar transforms."""
        disc, dataset = fitted
        packages = dataset.test_packages[:12]
        prev_times = [None] * 4 + [p.time - 0.7 for p in packages[4:]]
        batched = disc.transform_batch(packages, prev_times)
        for package, prev, expected in zip(packages, prev_times, batched):
            assert disc.transform_package(package, prev) == expected

    def test_length_mismatch_rejected(self, fitted):
        disc, dataset = fitted
        with pytest.raises(ValueError):
            disc.transform_batch(dataset.test_packages[:3], [None, None])

    def test_empty_batch(self, fitted):
        disc, _ = fitted
        assert disc.transform_batch([], []) == []
