"""Tests for granularity search (Fig 5) and choose-k (Fig 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.discretization import FeatureDiscretizer
from repro.core.signatures import SignatureVocabulary
from repro.core.timeseries_detector import TimeSeriesDetector, TimeSeriesDetectorConfig
from repro.core.tuning import choose_k, granularity_search
from repro.ics.dataset import DatasetConfig, generate_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetConfig(num_cycles=600), seed=11)


class TestGranularitySearch:
    @pytest.fixture(scope="class")
    def result(self, dataset):
        return granularity_search(
            dataset.train_fragments,
            dataset.validation_fragments,
            pressure_grid=(5, 10, 20),
            setpoint_grid=(5, 10),
            theta=0.2,
            rng=0,
        )

    def test_grid_shape(self, result):
        assert result.errors.shape == (3, 2)
        assert result.pressure_grid == (5, 10, 20)
        assert result.setpoint_grid == (5, 10)

    def test_errors_in_unit_interval(self, result):
        assert np.all(result.errors >= 0.0)
        assert np.all(result.errors <= 1.0)

    def test_error_weakly_increases_with_granularity(self, result):
        # Finer partitions can only split signatures further.
        column = result.errors[:, 0]
        assert column[-1] >= column[0] - 1e-9

    def test_best_point_feasible_when_possible(self, result):
        if np.any(result.errors < result.theta):
            assert (
                result.error_at(result.best_pressure_bins, result.best_setpoint_bins)
                < result.theta
            )

    def test_best_maximizes_weighted_granularity(self, dataset):
        result = granularity_search(
            dataset.train_fragments,
            dataset.validation_fragments,
            pressure_grid=(5, 10),
            setpoint_grid=(5,),
            theta=0.99,  # everything feasible
            rng=0,
        )
        assert result.best_pressure_bins == 10  # finest feasible wins

    def test_as_rows(self, result):
        rows = result.as_rows()
        assert len(rows) == 6
        assert all(len(r) == 3 for r in rows)

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            granularity_search(
                dataset.train_fragments,
                dataset.validation_fragments,
                theta=0.0,
            )
        with pytest.raises(ValueError):
            granularity_search(
                dataset.train_fragments,
                dataset.validation_fragments,
                pressure_grid=(),
            )


class TestChooseK:
    @pytest.fixture(scope="class")
    def detector(self, dataset):
        discretizer = FeatureDiscretizer(rng=0).fit(dataset.train_fragments)
        codes = [discretizer.transform_sequence(f) for f in dataset.train_fragments]
        vocab = SignatureVocabulary.from_code_vectors(
            [c for fragment in codes for c in fragment]
        )
        ts = TimeSeriesDetector(
            vocab,
            discretizer.cardinalities,
            TimeSeriesDetectorConfig(hidden_sizes=(12,), epochs=3),
            rng=0,
        )
        ts.fit(codes)
        val_codes = [
            discretizer.transform_sequence(f) for f in dataset.validation_fragments
        ]
        return ts, val_codes

    def test_returns_curve_and_k(self, detector):
        ts, val_codes = detector
        k, curve = choose_k(ts, val_codes, theta=0.5, max_k=6)
        assert 1 <= k <= 6
        assert set(curve) == {1, 2, 3, 4, 5, 6}
        # k is the smallest below theta, or max_k.
        below = [kk for kk in sorted(curve) if curve[kk] < 0.5]
        assert k == (below[0] if below else 6)

    def test_validation(self, detector):
        ts, val_codes = detector
        with pytest.raises(ValueError):
            choose_k(ts, val_codes, theta=1.5)
        with pytest.raises(ValueError):
            choose_k(ts, val_codes, theta=0.1, max_k=0)
