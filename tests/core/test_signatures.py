"""Tests for signature generation and the vocabulary."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signatures import SignatureVocabulary, codes_of, signature_of

code_vectors = st.lists(st.integers(0, 40), min_size=1, max_size=13)


class TestGeneratingFunction:
    def test_concatenation(self):
        assert signature_of((1, 2, 3)) == "1|2|3"

    @given(code_vectors, code_vectors)
    def test_injective(self, a, b):
        """g(c) = g(c') iff c = c' — the paper's requirement on g."""
        if signature_of(a) == signature_of(b):
            assert list(a) == list(b)
        else:
            assert list(a) != list(b)

    @given(code_vectors)
    def test_roundtrip(self, codes):
        assert list(codes_of(signature_of(codes))) == list(codes)

    def test_codes_of_empty_rejected(self):
        with pytest.raises(ValueError):
            codes_of("")


class TestVocabulary:
    def test_ids_dense_first_seen_order(self):
        vocab = SignatureVocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0
        assert len(vocab) == 2
        assert vocab.signature_at(1) == "b"

    def test_counts(self):
        vocab = SignatureVocabulary()
        for signature in ["x", "x", "y"]:
            vocab.add(signature)
        assert vocab.count("x") == 2
        assert vocab.count("y") == 1
        assert vocab.count("z") == 0
        assert vocab.count_by_id(0) == 2
        assert vocab.total_occurrences == 3

    def test_membership_and_lookup(self):
        vocab = SignatureVocabulary()
        vocab.add("sig")
        assert "sig" in vocab
        assert "other" not in vocab
        assert vocab.id_of("sig") == 0
        assert vocab.id_of("other") is None

    def test_from_code_vectors(self):
        vocab = SignatureVocabulary.from_code_vectors([(1, 2), (1, 2), (3, 4)])
        assert len(vocab) == 2
        assert vocab.count(signature_of((1, 2))) == 2

    def test_signatures_returns_copy(self):
        vocab = SignatureVocabulary()
        vocab.add("a")
        listing = vocab.signatures
        listing.append("b")
        assert len(vocab) == 1
