"""Tests for the Bloom filter, including the no-false-negative property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter

signatures = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=30,
)


class TestSizing:
    def test_for_capacity_parameters(self):
        bloom = BloomFilter.for_capacity(1000, 0.01)
        # m = -n ln p / (ln 2)^2 ~ 9585 bits, k ~ 7.
        assert 9000 < bloom.num_bits < 10500
        assert 6 <= bloom.num_hashes <= 8

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 1.5)
        with pytest.raises(ValueError):
            BloomFilter(4, 1)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)


class TestMembership:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(signatures, min_size=1, max_size=80, unique=True))
    def test_no_false_negatives(self, keys):
        """The paper's key property: inserted signatures always hit."""
        bloom = BloomFilter.for_capacity(len(keys), 0.01)
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        rng = np.random.default_rng(0)
        inserted = [f"sig-{i}" for i in range(2000)]
        bloom = BloomFilter.for_capacity(2000, 0.01)
        bloom.update(inserted)
        probes = [f"other-{i}" for i in range(20000)]
        fp = sum(1 for p in probes if p in bloom) / len(probes)
        assert fp < 0.03  # within 3x of the 1% design point

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(1024, 3)
        assert "anything" not in bloom

    def test_len_counts_insertions(self):
        bloom = BloomFilter(1024, 3)
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2


class TestDiagnostics:
    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(2048, 4)
        previous = 0.0
        for i in range(50):
            bloom.add(f"k{i}")
            ratio = bloom.fill_ratio
            assert ratio >= previous
            previous = ratio
        assert 0.0 < bloom.fill_ratio < 1.0

    def test_estimated_fpr_empty_is_zero(self):
        assert BloomFilter(1024, 3).estimated_false_positive_rate() == 0.0

    def test_memory_bytes(self):
        assert BloomFilter(8192, 3).memory_bytes() == 1024


class TestUnion:
    def test_union_contains_both(self):
        a = BloomFilter(1024, 3)
        b = BloomFilter(1024, 3)
        a.add("left")
        b.add("right")
        merged = a.union(b)
        assert "left" in merged and "right" in merged

    def test_union_requires_matching_params(self):
        with pytest.raises(ValueError):
            BloomFilter(1024, 3).union(BloomFilter(2048, 3))


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        bloom = BloomFilter.for_capacity(100, 0.01)
        keys = [f"sig{i}" for i in range(100)]
        bloom.update(keys)
        path = tmp_path / "bloom.npz"
        bloom.save(path)
        restored = BloomFilter.load(path)
        assert all(k in restored for k in keys)
        assert restored.num_bits == bloom.num_bits
        assert len(restored) == len(bloom)


class TestContainsMany:
    def test_matches_scalar_lookups(self):
        bloom = BloomFilter.for_capacity(200, 0.01)
        members = [f"sig{i}" for i in range(100)]
        bloom.update(members)
        probes = members[:10] + [f"other{i}" for i in range(20)]
        batched = bloom.contains_many(probes)
        assert batched.dtype == bool
        np.testing.assert_array_equal(batched, [key in bloom for key in probes])

    def test_empty_batch(self):
        bloom = BloomFilter.for_capacity(10, 0.01)
        assert bloom.contains_many([]).shape == (0,)
