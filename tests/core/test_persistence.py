"""Tests for the unified persistence layer.

The two headline properties the layer guarantees:

- a trained :class:`CombinedDetector` saved and re-loaded produces
  ``detect()`` output bit-identical to the in-memory original,
- a :class:`StreamEngine` checkpointed mid-stream and resumed produces
  bit-identical verdicts to an uninterrupted run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.discretization import FeatureDiscretizer
from repro.core.signatures import SignatureVocabulary
from repro.core.stream_engine import StreamEngine
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.persistence import (
    checkpoint_meta,
    load_checkpoint,
    load_detector,
    save_checkpoint,
    save_detector,
)
from repro.utils.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    load_artifact,
    read_meta,
    save_artifact,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetConfig(num_cycles=200), seed=3)


@pytest.fixture(scope="module")
def detector(dataset):
    trained, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=(12,), epochs=2)
        ),
        rng=3,
    )
    return trained


class TestArtifactContainer:
    def test_nested_round_trip(self, tmp_path):
        state = {
            "scalar": 3,
            "pi": 0.1 + 0.2,  # not exactly representable; must round-trip
            "flag": True,
            "nothing": None,
            "name": "hello",
            "values": [1, 2.5, "x"],
            "array": np.arange(6, dtype=np.float64).reshape(2, 3),
            "nested": {"deep": {"bits": np.array([1, 0, 1], dtype=np.uint8)}},
        }
        path = tmp_path / "artifact.npz"
        save_artifact(state, path, kind="test")
        restored = load_artifact(path, kind="test")
        assert restored["scalar"] == 3
        assert restored["pi"] == 0.1 + 0.2  # bit-exact
        assert restored["flag"] is True
        assert restored["nothing"] is None
        assert restored["name"] == "hello"
        assert restored["values"] == [1, 2.5, "x"]
        np.testing.assert_array_equal(restored["array"], state["array"])
        np.testing.assert_array_equal(
            restored["nested"]["deep"]["bits"], state["nested"]["deep"]["bits"]
        )

    def test_meta_readable_without_arrays(self, tmp_path):
        path = tmp_path / "artifact.npz"
        save_artifact({"x": np.zeros(4)}, path, kind="test", meta={"seed": 7})
        header = read_meta(path)
        assert header["kind"] == "test"
        assert header["version"] == ARTIFACT_VERSION
        assert header["meta"] == {"seed": 7}

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "artifact.npz"
        save_artifact({"x": 1}, path, kind="one-thing")
        with pytest.raises(ArtifactError, match="expected a 'another'"):
            load_artifact(path, kind="another")

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ArtifactError, match="missing"):
            load_artifact(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "torn.npz"
        save_artifact({"x": np.zeros(64)}, path, kind="test")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactError, match="unreadable|missing|corrupt"):
            load_artifact(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "nope.npz")

    def test_slash_keys_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="/-free"):
            save_artifact({"a/b": 1}, tmp_path / "x.npz", kind="test")

    def test_unsupported_leaf_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="unsupported"):
            save_artifact({"f": object()}, tmp_path / "x.npz", kind="test")


class TestComponentRoundTrips:
    def test_discretizer_transform_identical(self, dataset, detector):
        restored = FeatureDiscretizer.from_state(detector.discretizer.state_dict())
        packages = dataset.test_packages[:64]
        assert restored.cardinalities == detector.discretizer.cardinalities
        assert restored.transform_sequence(packages) == (
            detector.discretizer.transform_sequence(packages)
        )

    def test_vocabulary_identical(self, detector):
        vocabulary = detector.vocabulary
        restored = SignatureVocabulary.from_state(vocabulary.state_dict())
        assert restored.signatures == vocabulary.signatures
        assert len(restored) == len(vocabulary)
        for signature in vocabulary.signatures:
            assert restored.id_of(signature) == vocabulary.id_of(signature)
            assert restored.count(signature) == vocabulary.count(signature)

    def test_bloom_state_protocol(self):
        bloom = BloomFilter.for_capacity(64, 0.01)
        bloom.update(f"sig-{i}" for i in range(40))
        restored = BloomFilter.from_state(bloom.state_dict())
        np.testing.assert_array_equal(restored._bits, bloom._bits)
        assert len(restored) == len(bloom)
        assert all(f"sig-{i}" in restored for i in range(40))

    def test_timeseries_keeps_shared_vocabulary(self, detector):
        rebuilt = CombinedDetector.from_state(detector.state_dict())
        assert rebuilt.timeseries.vocabulary is rebuilt.package_detector.vocabulary

    def test_chosen_k_survives(self, detector):
        rebuilt = CombinedDetector.from_state(detector.state_dict())
        assert rebuilt.k == detector.k


class TestDetectorRoundTrip:
    def test_detect_bit_identical(self, dataset, detector, tmp_path):
        path = tmp_path / "detector.npz"
        save_detector(detector, path)
        restored = load_detector(path)
        original = detector.detect(dataset.test_packages)
        loaded = restored.detect(dataset.test_packages)
        np.testing.assert_array_equal(original.is_anomaly, loaded.is_anomaly)
        np.testing.assert_array_equal(original.level, loaded.level)

    def test_memory_footprint_preserved(self, detector, tmp_path):
        path = tmp_path / "detector.npz"
        save_detector(detector, path)
        assert load_detector(path).memory_bytes() == detector.memory_bytes()

    def test_detector_artifact_meta(self, detector, tmp_path):
        path = tmp_path / "detector.npz"
        save_detector(detector, path, meta={"profile": "ci", "seed": 3})
        assert read_meta(path)["meta"] == {"profile": "ci", "seed": 3}

    def test_checkpoint_is_not_a_detector(self, detector, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(detector.engine(1), path)
        with pytest.raises(ArtifactError, match="combined-detector"):
            load_detector(path)

    def test_corrupted_detector_artifact(self, detector, tmp_path):
        path = tmp_path / "detector.npz"
        state = detector.state_dict()
        del state["timeseries"]["model"]
        save_artifact(state, path, kind="combined-detector")
        with pytest.raises((ArtifactError, KeyError)):
            load_detector(path)


class TestEngineCheckpoint:
    def _streams(self, dataset, num_streams, ticks):
        packages = dataset.test_packages
        return [
            [packages[(i * 31 + t) % len(packages)] for t in range(ticks)]
            for i in range(num_streams)
        ]

    def test_resume_bit_identical_mid_stream(self, dataset, detector, tmp_path):
        ticks, split = 40, 17
        streams = self._streams(dataset, 3, ticks)

        uninterrupted = detector.engine(3)
        expected = [
            uninterrupted.observe_batch([s[t] for s in streams])
            for t in range(ticks)
        ]

        engine = detector.engine(3)
        for t in range(split):
            engine.observe_batch([s[t] for s in streams])
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(engine, path, meta={"offset": split})

        resumed = load_checkpoint(path)
        assert checkpoint_meta(path) == {"offset": split}
        assert resumed.stream_ids == engine.stream_ids
        for t in range(split, ticks):
            verdicts, levels = resumed.observe_batch([s[t] for s in streams])
            np.testing.assert_array_equal(verdicts, expected[t][0])
            np.testing.assert_array_equal(levels, expected[t][1])

    def test_resume_against_preloaded_detector(self, dataset, detector, tmp_path):
        streams = self._streams(dataset, 2, 10)
        engine = detector.engine(2)
        for t in range(5):
            engine.observe_batch([s[t] for s in streams])
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(engine, path)
        resumed = load_checkpoint(path, detector=detector)
        assert resumed.detector is detector
        np.testing.assert_array_equal(
            resumed.observe_batch([s[5] for s in streams])[0],
            engine.observe_batch([s[5] for s in streams])[0],
        )

    def test_checkpoint_preserves_lifecycle(self, dataset, detector, tmp_path):
        engine = detector.engine(2)
        engine.detach(engine.stream_ids[0])
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(engine, path)
        resumed = load_checkpoint(path)
        assert resumed.stream_ids == engine.stream_ids
        # New attachments must not collide with ids handed out pre-checkpoint.
        assert resumed.attach() == 2

    def test_packages_seen_survive(self, dataset, detector, tmp_path):
        streams = self._streams(dataset, 2, 8)
        engine = detector.engine(2)
        for t in range(8):
            engine.observe_batch([s[t] for s in streams])
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(engine, path)
        resumed = load_checkpoint(path)
        for stream_id in engine.stream_ids:
            assert resumed.packages_seen(stream_id) == 8

    def test_corrupt_engine_state_rejected(self, detector):
        engine = detector.engine(2)
        state = engine.state_dict()
        state["stream_ids"] = np.array([0], dtype=np.int64)  # row-count mismatch
        with pytest.raises(ArtifactError, match="disagree"):
            StreamEngine.from_state(detector, state)

    def test_mismatched_detector_rejected_at_load(
        self, dataset, detector, tmp_path
    ):
        """Resuming against the wrong architecture fails at load time."""
        other, _ = CombinedDetector.train(
            dataset.train_fragments,
            dataset.validation_fragments,
            DetectorConfig(
                timeseries=TimeSeriesDetectorConfig(hidden_sizes=(8,), epochs=1)
            ),
            rng=3,
        )
        engine = detector.engine(1)
        engine.observe_batch([dataset.test_packages[0]])
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(engine, path)
        with pytest.raises(ArtifactError, match="architecture"):
            load_checkpoint(path, detector=other)
