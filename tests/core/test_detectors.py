"""Tests for the package-level, time-series and combined detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combined import (
    CombinedDetector,
    DetectorConfig,
    LEVEL_NONE,
    LEVEL_PACKAGE,
    LEVEL_TIMESERIES,
    choose_k_from_curve,
)
from repro.core.discretization import FeatureDiscretizer
from repro.core.package_detector import PackageLevelDetector
from repro.core.signatures import SignatureVocabulary
from repro.core.timeseries_detector import (
    CodeEncoder,
    TimeSeriesDetector,
    TimeSeriesDetectorConfig,
)
from repro.ics.dataset import DatasetConfig, generate_dataset

TS_CONFIG = TimeSeriesDetectorConfig(hidden_sizes=(16,), epochs=4, k=3)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetConfig(num_cycles=700), seed=5)


@pytest.fixture(scope="module")
def trained(dataset):
    config = DetectorConfig(timeseries=TS_CONFIG)
    return CombinedDetector.train(
        dataset.train_fragments, dataset.validation_fragments, config, rng=0
    )


class TestPackageLevelDetector:
    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        discretizer = FeatureDiscretizer(rng=0).fit(dataset.train_fragments)
        return PackageLevelDetector(discretizer).fit(dataset.train_fragments)

    def test_training_data_never_flagged(self, fitted, dataset):
        """Bloom filters have no false negatives: training packages pass."""
        for fragment in dataset.train_fragments[:5]:
            marks = fitted.classify_sequence(fragment)
            assert not marks.any()

    def test_validation_error_low(self, fitted, dataset):
        # The CI-size dataset undersamples the signature space, so the
        # bound here is loose; benchmark-scale runs assert the paper's
        # theta = 0.03 regime.
        error = fitted.validation_error(dataset.validation_fragments)
        assert 0.0 <= error < 0.5

    def test_foreign_address_flagged(self, fitted, dataset):
        package = dataset.train_fragments[0][0].replace(address=99)
        marks = fitted.classify_sequence([package])
        assert marks[0]

    def test_unfitted_raises(self, dataset):
        discretizer = FeatureDiscretizer(rng=0).fit(dataset.train_fragments)
        detector = PackageLevelDetector(discretizer)
        with pytest.raises(RuntimeError):
            detector.classify_sequence(dataset.train_fragments[0])

    def test_fit_empty_rejected(self, fitted):
        with pytest.raises(ValueError):
            PackageLevelDetector(fitted.discretizer).fit([])

    def test_memory_reported(self, fitted):
        assert fitted.memory_bytes() > 0


class TestCodeEncoder:
    def test_one_hot_layout(self):
        encoder = CodeEncoder((3, 4))
        assert encoder.input_size == 8  # 3 + 4 + noise bit
        row = encoder.encode_one((2, 0), noise_flag=True)
        np.testing.assert_array_equal(row, [0, 0, 1, 1, 0, 0, 0, 1])

    def test_rejects_out_of_range_codes(self):
        encoder = CodeEncoder((3, 4))
        with pytest.raises(ValueError):
            encoder.encode_sequence([(3, 0)])

    def test_rejects_wrong_channel_count(self):
        encoder = CodeEncoder((3, 4))
        with pytest.raises(ValueError):
            encoder.encode_sequence([(1, 1, 1)])

    def test_empty_sequence(self):
        encoder = CodeEncoder((2, 2))
        assert encoder.encode_sequence([]).shape == (0, 5)


class TestTimeSeriesDetector:
    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        discretizer = FeatureDiscretizer(rng=0).fit(dataset.train_fragments)
        codes = [discretizer.transform_sequence(f) for f in dataset.train_fragments]
        vocab = SignatureVocabulary.from_code_vectors(
            [c for fragment in codes for c in fragment]
        )
        detector = TimeSeriesDetector(vocab, discretizer.cardinalities, TS_CONFIG, rng=0)
        detector.fit(codes)
        return detector, codes

    def test_top_k_errors_monotone(self, fitted):
        detector, codes = fitted
        errors = detector.top_k_errors(codes[:10], [1, 2, 4, 8])
        values = [errors[k] for k in sorted(errors)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_first_package_never_flagged(self, fitted):
        detector, codes = fitted
        state = detector.new_stream()
        verdict, _ = detector.observe(codes[0][0], state)
        assert verdict is False

    def test_observe_forced_verdict(self, fitted):
        detector, codes = fitted
        state = detector.new_stream()
        verdict, state = detector.observe(codes[0][0], state, forced_verdict=True)
        assert verdict is True

    def test_classify_sequence_shape(self, fitted):
        detector, codes = fitted
        verdicts = detector.classify_sequence(codes[0][:20])
        assert verdicts.shape == (20,)

    def test_unseen_signature_flagged_after_warmup(self, fitted):
        detector, codes = fitted
        state = detector.new_stream()
        for vector in codes[0][:5]:
            _, state = detector.observe(vector, state)
        cardinalities = detector.encoder.cardinalities
        alien = tuple(c - 1 for c in cardinalities)  # all-missing vector
        verdict, _ = detector.observe(alien, state)
        assert verdict is True

    def test_requires_vocabulary_of_two(self, fitted):
        vocab = SignatureVocabulary()
        vocab.add("only")
        with pytest.raises(ValueError):
            TimeSeriesDetector(vocab, (3, 3), TS_CONFIG)

    def test_training_rejects_out_of_vocab_targets(self, fitted):
        detector, codes = fitted
        cardinalities = detector.encoder.cardinalities
        alien = tuple(c - 1 for c in cardinalities)
        with pytest.raises(ValueError):
            detector.fit([[alien, alien, alien]])


class TestCombinedDetector:
    def test_training_artifacts(self, trained):
        detector, artifacts = trained
        assert artifacts.vocabulary_size == len(detector.vocabulary)
        assert 1 <= artifacts.chosen_k <= 10
        assert artifacts.package_validation_error < 0.5
        assert artifacts.timeseries_report.history.losses

    def test_detect_shapes_and_levels(self, trained, dataset):
        detector, _ = trained
        result = detector.detect(dataset.test_packages[:400])
        assert len(result) == 400
        assert set(np.unique(result.level)) <= {
            LEVEL_NONE,
            LEVEL_PACKAGE,
            LEVEL_TIMESERIES,
        }
        # Levels are consistent with verdicts.
        assert np.all((result.level != LEVEL_NONE) == result.is_anomaly)

    def test_streaming_matches_batch(self, trained, dataset):
        detector, _ = trained
        packages = dataset.test_packages[:150]
        batch = detector.detect(packages)
        monitor = detector.stream()
        for i, package in enumerate(packages):
            verdict, _ = monitor.observe(package)
            assert verdict == batch.is_anomaly[i]

    def test_detects_some_attacks(self, trained, dataset):
        detector, _ = trained
        result = detector.detect(dataset.test_packages)
        labels = np.array([p.label for p in dataset.test_packages])
        attack_recall = result.is_anomaly[labels != 0].mean()
        assert attack_recall > 0.5

    def test_k_setter_validated(self, trained):
        detector, _ = trained
        with pytest.raises(ValueError):
            detector.k = 0
        detector.k = 5
        assert detector.k == 5

    def test_memory_accounting(self, trained):
        detector, _ = trained
        assert detector.memory_bytes() > 1000

    def test_signature_inspection(self, trained, dataset):
        detector, _ = trained
        signature = detector.signature_of_package(dataset.test_packages[0])
        assert "|" in signature

    def test_train_requires_fragments(self, dataset):
        with pytest.raises(ValueError):
            CombinedDetector.train([], dataset.validation_fragments)
        with pytest.raises(ValueError):
            CombinedDetector.train(dataset.train_fragments, [])


class TestChooseKFromCurve:
    def test_picks_smallest_below_theta(self):
        curve = {1: 0.4, 2: 0.1, 3: 0.04, 4: 0.01}
        assert choose_k_from_curve(curve, 0.05) == 3

    def test_falls_back_to_max(self):
        curve = {1: 0.5, 2: 0.4}
        assert choose_k_from_curve(curve, 0.05) == 2
