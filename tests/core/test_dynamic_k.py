"""Tests for the dynamic-k extension (paper future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic_k import DynamicKConfig, DynamicKPolicy, rank_of


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k_min": 0},
            {"k_min": 5, "k_max": 2},
            {"window": 5},
            {"quantile": 0.4},
            {"quantile": 1.0},
            {"slack": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DynamicKConfig(**kwargs).validate()

    def test_initial_k_bounds(self):
        with pytest.raises(ValueError):
            DynamicKPolicy(DynamicKConfig(k_min=2, k_max=6), initial_k=1)


class TestPolicy:
    def test_sharp_predictions_shrink_k(self):
        policy = DynamicKPolicy(DynamicKConfig(k_min=2, k_max=10, window=40), initial_k=8)
        for _ in range(100):
            policy.observe_rank(0)  # always top-1 correct
        assert policy.k <= 3

    def test_diffuse_predictions_grow_k(self):
        policy = DynamicKPolicy(DynamicKConfig(k_min=2, k_max=10, window=40), initial_k=2)
        rng = np.random.default_rng(0)
        for _ in range(200):
            policy.observe_rank(int(rng.integers(0, 8)))
        assert policy.k >= 7

    def test_k_stays_in_bounds(self):
        policy = DynamicKPolicy(DynamicKConfig(k_min=3, k_max=5, window=40), initial_k=4)
        for rank in [0] * 100 + [50] * 100:
            k = policy.observe_rank(rank)
            assert 3 <= k <= 5

    def test_none_ranks_ignored(self):
        policy = DynamicKPolicy(initial_k=4)
        for _ in range(500):
            policy.observe_rank(None)
        assert policy.k == 4  # no normal observations, no movement

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            DynamicKPolicy().observe_rank(-1)

    def test_warmup_before_adjusting(self):
        policy = DynamicKPolicy(DynamicKConfig(window=100), initial_k=4)
        for _ in range(10):  # fewer than window // 4 observations
            policy.observe_rank(0)
        assert policy.k == 4


class TestRankOf:
    def test_ranks(self):
        probs = np.array([0.1, 0.6, 0.3])
        assert rank_of(probs, 1) == 0
        assert rank_of(probs, 2) == 1
        assert rank_of(probs, 0) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            rank_of(np.array([1.0]), 5)
