"""Tests for the from-scratch k-means implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kmeans import assign_clusters, kmeans


class TestKmeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        data = np.concatenate([rng.normal(0, 0.1, 50), rng.normal(10, 0.1, 50)])
        result = kmeans(data, 2, rng=0)
        centroids = sorted(result.centroids[:, 0])
        assert abs(centroids[0] - 0.0) < 0.5
        assert abs(centroids[1] - 10.0) < 0.5

    def test_assignments_are_nearest_centroid(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((100, 3))
        result = kmeans(data, 5, rng=1)
        expected = assign_clusters(data, result.centroids)
        np.testing.assert_array_equal(result.assignments, expected)

    def test_k_reduced_to_distinct_points(self):
        data = np.array([[1.0], [1.0], [2.0]])
        result = kmeans(data, 10, rng=0)
        assert result.num_clusters == 2

    def test_single_cluster(self):
        data = np.arange(10, dtype=float)
        result = kmeans(data, 1, rng=0)
        np.testing.assert_allclose(result.centroids[0, 0], data.mean())

    def test_inertia_nonnegative_and_zero_for_exact_fit(self):
        data = np.array([[0.0], [0.0], [5.0], [5.0]])
        result = kmeans(data, 2, rng=0)
        assert result.inertia < 1e-12

    def test_reproducible(self):
        data = np.random.default_rng(3).standard_normal((60, 2))
        a = kmeans(data, 4, rng=9)
        b = kmeans(data, 4, rng=9)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 0)
        with pytest.raises(ValueError):
            kmeans(np.array([1.0, np.nan]), 1)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 5),
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=40,
        ),
    )
    def test_property_inertia_not_worse_than_single_centroid(self, k, values):
        data = np.asarray(values)
        result = kmeans(data, k, rng=0)
        single = kmeans(data, 1, rng=0)
        assert result.inertia <= single.inertia + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=3,
            max_size=30,
        )
    )
    def test_property_every_point_assigned_to_nearest(self, values):
        data = np.asarray(values)[:, None]
        result = kmeans(data, 2, rng=0)
        for i, row in enumerate(data):
            distances = np.abs(result.centroids[:, 0] - row[0])
            assert (
                abs(distances[result.assignments[i]] - distances.min()) < 1e-9
            )
