"""Tests for model save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import NetworkConfig, StackedLSTMClassifier
from repro.nn.serialization import load_classifier, save_classifier


@pytest.fixture
def trained_model():
    model = StackedLSTMClassifier(NetworkConfig(3, (5, 4), 6), rng=0)
    # Nudge the weights so defaults differ from a fresh model.
    for param in model.parameters().values():
        param += 0.01
    return model


class TestRoundTrip:
    def test_predictions_identical(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        restored = load_classifier(path)
        x = np.random.default_rng(0).standard_normal((6, 3))
        np.testing.assert_array_equal(
            trained_model.predict_proba(x), restored.predict_proba(x)
        )

    def test_config_restored(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        restored = load_classifier(path)
        assert restored.config == trained_model.config

    def test_all_parameters_restored(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        restored = load_classifier(path)
        for name, param in trained_model.parameters().items():
            np.testing.assert_array_equal(param, restored.parameters()[name])


class TestErrors:
    def test_not_a_model_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="missing"):
            load_classifier(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_classifier(tmp_path / "nope.npz")
