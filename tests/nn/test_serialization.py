"""Tests for model save/load and training checkpoints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, NetworkConfig, StackedLSTMClassifier
from repro.nn.data import PaddedBatch
from repro.nn.serialization import (
    load_checkpoint,
    load_classifier,
    save_checkpoint,
    save_classifier,
)


@pytest.fixture
def trained_model():
    model = StackedLSTMClassifier(NetworkConfig(3, (5, 4), 6), rng=0)
    # Nudge the weights so defaults differ from a fresh model.
    for param in model.parameters().values():
        param += 0.01
    return model


class TestRoundTrip:
    def test_predictions_identical(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        restored = load_classifier(path)
        x = np.random.default_rng(0).standard_normal((6, 3))
        np.testing.assert_array_equal(
            trained_model.predict_proba(x), restored.predict_proba(x)
        )

    def test_config_restored(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        restored = load_classifier(path)
        assert restored.config == trained_model.config

    def test_all_parameters_restored(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        restored = load_classifier(path)
        for name, param in trained_model.parameters().items():
            np.testing.assert_array_equal(param, restored.parameters()[name])


def _training_batch(rng_seed: int = 1) -> PaddedBatch:
    rng = np.random.default_rng(rng_seed)
    timesteps, batch, input_size, classes = 4, 2, 3, 6
    return PaddedBatch(
        inputs=rng.standard_normal((timesteps, batch, input_size)),
        targets=rng.integers(0, classes, size=(timesteps, batch)),
        mask=np.ones((timesteps, batch)),
    )


class TestOptimizerCheckpoint:
    def _partially_trained(self):
        model = StackedLSTMClassifier(NetworkConfig(3, (5, 4), 6), rng=0)
        optimizer = Adam(learning_rate=0.01)
        for seed in range(3):
            model.train_batch(_training_batch(seed), optimizer)
        return model, optimizer

    def test_optimizer_state_restored(self, tmp_path):
        model, optimizer = self._partially_trained()
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(model, optimizer, path)
        _, restored = load_checkpoint(path)
        assert restored is not None
        assert restored.iterations == optimizer.iterations
        assert restored.learning_rate == optimizer.learning_rate
        for slot, values in optimizer._slots().items():
            restored_values = restored._slots()[slot]
            assert set(restored_values) == set(values)
            for name, array in values.items():
                np.testing.assert_array_equal(restored_values[name], array)

    def test_resumed_training_steps_bit_identical(self, tmp_path):
        """An interrupted run continues exactly like an uninterrupted one."""
        model, optimizer = self._partially_trained()
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(model, optimizer, path)
        resumed_model, resumed_optimizer = load_checkpoint(path)

        batch = _training_batch(99)
        loss_original = model.train_batch(batch, optimizer)
        loss_resumed = resumed_model.train_batch(batch, resumed_optimizer)
        assert loss_original == loss_resumed
        for name, param in model.parameters().items():
            np.testing.assert_array_equal(
                param, resumed_model.parameters()[name]
            )

    def test_classifier_without_optimizer_loads_none(self, trained_model, tmp_path):
        path = tmp_path / "model.npz"
        save_classifier(trained_model, path)
        _, optimizer = load_checkpoint(path)
        assert optimizer is None

    def test_load_classifier_ignores_optimizer(self, tmp_path):
        model, optimizer = self._partially_trained()
        path = tmp_path / "checkpoint.npz"
        save_checkpoint(model, optimizer, path)
        restored = load_classifier(path)
        x = np.random.default_rng(0).standard_normal((6, 3))
        np.testing.assert_array_equal(
            model.predict_proba(x), restored.predict_proba(x)
        )


class TestErrors:
    def test_not_a_model_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="missing"):
            load_classifier(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_classifier(tmp_path / "nope.npz")
