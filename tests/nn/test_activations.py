"""Tests for activation functions."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.activations import (
    log_softmax,
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softmax,
    tanh,
    tanh_grad,
)

floats = st.floats(min_value=-50, max_value=50, allow_nan=False)
arrays = hnp.arrays(np.float64, st.integers(1, 20), elements=floats)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_extreme_values_do_not_overflow(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(out))
        assert out[0] == 0.0 or out[0] < 1e-300
        assert out[1] == 1.0

    @given(arrays)
    def test_range(self, x):
        y = sigmoid(x)
        assert np.all(y >= 0) and np.all(y <= 1)

    @given(arrays)
    def test_symmetry(self, x):
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_grad_matches_numerical(self):
        x = np.linspace(-4, 4, 9)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid_grad(sigmoid(x)), numeric, atol=1e-9)


class TestTanh:
    def test_grad_matches_numerical(self):
        x = np.linspace(-3, 3, 7)
        eps = 1e-6
        numeric = (tanh(x + eps) - tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(tanh_grad(tanh(x)), numeric, atol=1e-9)


class TestRelu:
    def test_values(self):
        np.testing.assert_array_equal(relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0])

    def test_grad(self):
        np.testing.assert_array_equal(relu_grad(np.array([-2.0, 3.0])), [0.0, 1.0])


class TestSoftmax:
    @given(arrays)
    def test_rows_sum_to_one(self, x):
        np.testing.assert_allclose(softmax(x).sum(), 1.0, atol=1e-9)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_huge_logits_stable(self):
        out = softmax(np.array([1e4, 1e4 - 1, 0.0]))
        assert np.all(np.isfinite(out))

    def test_batched_axis(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        out = softmax(x, axis=1)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    @given(arrays)
    def test_log_softmax_consistent(self, x):
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), atol=1e-9)
