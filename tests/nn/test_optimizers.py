"""Tests for optimizers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, RMSProp, clip_gradients, global_norm


def _quadratic_params():
    """Single-parameter quadratic bowl: loss = 0.5 * ||w - 3||^2."""
    return {"w": np.array([10.0, -10.0])}


def _quadratic_grad(params):
    return {"w": params["w"] - 3.0}


@pytest.mark.parametrize(
    "optimizer",
    [
        SGD(learning_rate=0.1),
        SGD(learning_rate=0.05, momentum=0.9),
        RMSProp(learning_rate=0.05),
        Adam(learning_rate=0.3),
    ],
    ids=["sgd", "sgd-momentum", "rmsprop", "adam"],
)
def test_converges_on_quadratic(optimizer):
    params = _quadratic_params()
    for _ in range(300):
        optimizer.step(params, _quadratic_grad(params))
    np.testing.assert_allclose(params["w"], 3.0, atol=0.05)


class TestClipGradients:
    def test_no_clip_below_threshold(self):
        grads = {"a": np.array([3.0, 4.0])}  # norm 5
        clipped, norm = clip_gradients(grads, 10.0)
        assert norm == 5.0
        assert clipped is grads

    def test_clips_to_max_norm(self):
        grads = {"a": np.array([30.0, 40.0])}  # norm 50
        clipped, norm = clip_gradients(grads, 5.0)
        assert norm == 50.0
        np.testing.assert_allclose(global_norm(clipped), 5.0)

    def test_multi_param_global_norm(self):
        grads = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert global_norm(grads) == 5.0

    def test_zero_gradient_untouched(self):
        grads = {"a": np.zeros(3)}
        clipped, norm = clip_gradients(grads, 1.0)
        assert norm == 0.0
        np.testing.assert_array_equal(clipped["a"], 0.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients({"a": np.ones(2)}, 0.0)


class TestOptimizerPlumbing:
    def test_key_mismatch_rejected(self):
        opt = SGD()
        with pytest.raises(KeyError):
            opt.step({"a": np.zeros(2)}, {"b": np.zeros(2)})

    def test_updates_in_place(self):
        opt = SGD(learning_rate=1.0, clip_norm=None)
        params = {"w": np.array([1.0])}
        view = params["w"]
        opt.step(params, {"w": np.array([0.5])})
        assert view[0] == 0.5  # same array object mutated

    def test_reset_clears_state(self):
        opt = Adam()
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})
        assert opt.iterations == 1
        opt.reset()
        assert opt.iterations == 0

    def test_clipping_applied_inside_step(self):
        opt = SGD(learning_rate=1.0, clip_norm=1.0)
        params = {"w": np.array([0.0])}
        opt.step(params, {"w": np.array([100.0])})
        np.testing.assert_allclose(params["w"], -1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_learning_rate_validated(self, bad):
        with pytest.raises(ValueError):
            SGD(learning_rate=bad)

    def test_momentum_validated(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_adam_betas_validated(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_rmsprop_decay_validated(self):
        with pytest.raises(ValueError):
            RMSProp(decay=1.0)
