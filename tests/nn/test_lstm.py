"""Tests for the LSTM layer: shapes, state handling, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.losses import softmax_cross_entropy
from repro.nn.lstm import LSTMLayer, LSTMState


@pytest.fixture
def layer():
    return LSTMLayer(input_size=4, hidden_size=6, rng=0)


class TestForward:
    def test_output_shapes(self, layer):
        x = np.random.default_rng(0).standard_normal((5, 3, 4))
        h, state = layer.forward(x)
        assert h.shape == (5, 3, 6)
        assert state.h.shape == (3, 6)
        assert state.c.shape == (3, 6)

    def test_final_state_matches_last_output(self, layer):
        x = np.random.default_rng(1).standard_normal((5, 2, 4))
        h, state = layer.forward(x)
        np.testing.assert_array_equal(h[-1], state.h)

    def test_state_continuation_equals_long_pass(self, layer):
        """Splitting a sequence and carrying state must equal one pass."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 2, 4))
        h_full, _ = layer.forward(x, keep_cache=False)
        h_a, state = layer.forward(x[:4], keep_cache=False)
        h_b, _ = layer.forward(x[4:], state=state, keep_cache=False)
        np.testing.assert_allclose(np.concatenate([h_a, h_b]), h_full, atol=1e-12)

    def test_step_matches_forward(self, layer):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 1, 4))
        h_seq, _ = layer.forward(x, keep_cache=False)
        state = layer.zero_state(1)
        for t in range(6):
            h_t, state = layer.step(x[t], state)
            np.testing.assert_allclose(h_t, h_seq[t], atol=1e-12)

    def test_rejects_wrong_input_dim(self, layer):
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 2, 5)))

    def test_rejects_2d_input(self, layer):
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 4)))

    def test_bounded_outputs(self, layer):
        x = 100.0 * np.random.default_rng(4).standard_normal((4, 2, 4))
        h, _ = layer.forward(x, keep_cache=False)
        assert np.all(np.abs(h) <= 1.0)  # |h| = |o * tanh(c)| <= 1


class TestBackward:
    def test_gradcheck_all_parameters(self):
        layer = LSTMLayer(3, 5, rng=7)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 2, 3))
        targets = rng.integers(0, 5, size=8)

        def loss_and_grads():
            h, _ = layer.forward(x, keep_cache=True)
            loss, dflat = softmax_cross_entropy(h.reshape(-1, 5), targets)
            layer.backward(dflat.reshape(4, 2, 5))
            return loss, layer.grads

        errors = check_gradients(loss_and_grads, layer.params, max_entries_per_param=16)
        assert max(errors.values()) < 1e-5, errors

    def test_gradcheck_input_gradient(self):
        layer = LSTMLayer(3, 4, rng=11)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 2, 3))
        targets = rng.integers(0, 4, size=6)

        h, _ = layer.forward(x, keep_cache=True)
        loss, dflat = softmax_cross_entropy(h.reshape(-1, 4), targets)
        dx = layer.backward(dflat.reshape(3, 2, 4))

        eps = 1e-6
        rng2 = np.random.default_rng(2)
        for _ in range(10):
            t = rng2.integers(0, 3)
            b = rng2.integers(0, 2)
            d = rng2.integers(0, 3)
            x[t, b, d] += eps
            h_p, _ = layer.forward(x, keep_cache=False)
            loss_p, _ = softmax_cross_entropy(h_p.reshape(-1, 4), targets)
            x[t, b, d] -= 2 * eps
            h_m, _ = layer.forward(x, keep_cache=False)
            loss_m, _ = softmax_cross_entropy(h_m.reshape(-1, 4), targets)
            x[t, b, d] += eps
            numeric = (loss_p - loss_m) / (2 * eps)
            assert abs(dx[t, b, d] - numeric) < 1e-6

    def test_backward_without_forward_raises(self, layer):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 1, 6)))

    def test_backward_consumes_cache(self, layer):
        x = np.zeros((2, 1, 4))
        layer.forward(x, keep_cache=True)
        layer.backward(np.zeros((2, 1, 6)))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 1, 6)))

    def test_backward_shape_mismatch(self, layer):
        layer.forward(np.zeros((2, 1, 4)), keep_cache=True)
        with pytest.raises(ValueError):
            layer.backward(np.zeros((3, 1, 6)))


class TestMisc:
    def test_parameter_count(self):
        layer = LSTMLayer(3, 5, rng=0)
        # W: 3x20, U: 5x20, b: 20
        assert layer.parameter_count() == 3 * 20 + 5 * 20 + 20

    def test_forget_bias_initialized_to_one(self, layer):
        bias = layer.params["b"]
        np.testing.assert_array_equal(bias[6:12], 1.0)

    def test_state_copy_is_deep(self):
        state = LSTMState(np.zeros((1, 2)), np.zeros((1, 2)))
        clone = state.copy()
        clone.h[0, 0] = 5.0
        assert state.h[0, 0] == 0.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LSTMLayer(0, 4)
        with pytest.raises(ValueError):
            LSTMLayer(4, 0)


class TestStateBatching:
    def test_stack_and_split_roundtrip(self):
        rng = np.random.default_rng(0)
        states = [
            LSTMState(rng.normal(size=(1, 3)), rng.normal(size=(1, 3)))
            for _ in range(4)
        ]
        stacked = LSTMState.stack(states)
        assert stacked.batch_size == 4
        for original, restored in zip(states, stacked.split()):
            np.testing.assert_array_equal(original.h, restored.h)
            np.testing.assert_array_equal(original.c, restored.c)

    def test_stack_rejects_empty(self):
        with pytest.raises(ValueError):
            LSTMState.stack([])

    def test_select_compacts_rows(self):
        state = LSTMState(np.arange(6.0).reshape(3, 2), np.arange(6.0).reshape(3, 2))
        subset = state.select([0, 2])
        np.testing.assert_array_equal(subset.h, [[0.0, 1.0], [4.0, 5.0]])
        subset.h[0, 0] = 99.0  # select copies; original untouched
        assert state.h[0, 0] == 0.0

    def test_replace_rows_scatters(self):
        state = LSTMState(np.zeros((3, 2)), np.zeros((3, 2)))
        rows = LSTMState(np.ones((2, 2)), np.full((2, 2), 2.0))
        merged = state.replace_rows([0, 2], rows)
        np.testing.assert_array_equal(merged.h[:, 0], [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(merged.c[:, 0], [2.0, 0.0, 2.0])
        assert state.h.sum() == 0.0  # original untouched

    def test_replace_rows_count_mismatch(self):
        state = LSTMState(np.zeros((3, 2)), np.zeros((3, 2)))
        rows = LSTMState(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            state.replace_rows([0], rows)

    def test_batched_step_matches_single_rows(self):
        """One (B, D) step equals B separate (1, D) steps."""
        layer = LSTMLayer(4, 6, rng=3)
        rng = np.random.default_rng(1)
        xs = rng.normal(size=(5, 4))
        singles = []
        for row in xs:
            h, _ = layer.step(row[None, :], layer.zero_state(1))
            singles.append(h[0])
        h_batch, _ = layer.step(xs, layer.zero_state(5))
        np.testing.assert_allclose(h_batch, np.stack(singles), rtol=0, atol=1e-12)
