"""Tests for weight initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import glorot_uniform, lstm_forget_bias, orthogonal, zeros


class TestGlorot:
    def test_limit_respected(self):
        w = glorot_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_reproducible(self):
        np.testing.assert_array_equal(glorot_uniform((5, 5), 3), glorot_uniform((5, 5), 3))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            glorot_uniform((3,), 0)  # type: ignore[arg-type]


class TestOrthogonal:
    @pytest.mark.parametrize("shape", [(8, 8), (12, 6), (6, 12)])
    def test_orthonormal_columns_or_rows(self, shape):
        w = orthogonal(shape, rng=1)
        rows, cols = shape
        if rows >= cols:
            gram = w.T @ w
        else:
            gram = w @ w.T
        np.testing.assert_allclose(gram, np.eye(min(shape)), atol=1e-10)

    def test_gain_scales(self):
        w = orthogonal((6, 6), rng=2, gain=3.0)
        np.testing.assert_allclose(w.T @ w, 9.0 * np.eye(6), atol=1e-9)


class TestForgetBias:
    def test_only_forget_slice_set(self):
        hidden = 4
        bias = lstm_forget_bias(zeros((16,)), hidden, value=1.5)
        np.testing.assert_array_equal(bias[:4], 0.0)
        np.testing.assert_array_equal(bias[4:8], 1.5)
        np.testing.assert_array_equal(bias[8:], 0.0)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            lstm_forget_bias(zeros((10,)), 4)

    def test_does_not_mutate_input(self):
        original = zeros((8,))
        lstm_forget_bias(original, 2)
        np.testing.assert_array_equal(original, 0.0)
