"""Tests for softmax cross-entropy and top-k error."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.losses import softmax_cross_entropy, top_k_error, top_k_hits, top_k_sets


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[100.0, 0.0, 0.0], [0.0, 100.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_logits_loss_is_log_c(self):
        logits = np.zeros((4, 7))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loss, np.log(7), atol=1e-9)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 6))
        targets = rng.integers(0, 6, 5)
        _, grad = softmax_cross_entropy(logits, targets)
        eps = 1e-6
        for i in range(5):
            for j in range(6):
                bumped = logits.copy()
                bumped[i, j] += eps
                loss_plus, _ = softmax_cross_entropy(bumped, targets)
                bumped[i, j] -= 2 * eps
                loss_minus, _ = softmax_cross_entropy(bumped, targets)
                numeric = (loss_plus - loss_minus) / (2 * eps)
                assert abs(grad[i, j] - numeric) < 1e-7

    def test_weights_mask_samples(self):
        logits = np.array([[5.0, 0.0], [0.0, 5.0], [9.0, 9.0]])
        targets = np.array([0, 1, 0])
        # Third sample masked out: loss should match first two only.
        loss_masked, grad = softmax_cross_entropy(logits, targets, np.array([1.0, 1.0, 0.0]))
        loss_pair, _ = softmax_cross_entropy(logits[:2], targets[:2])
        np.testing.assert_allclose(loss_masked, loss_pair, atol=1e-12)
        np.testing.assert_array_equal(grad[2], 0.0)

    def test_all_zero_weights(self):
        loss, grad = softmax_cross_entropy(np.ones((2, 3)), np.array([0, 1]), np.zeros(2))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones((2, 3)), np.array([-1, 0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones(3), np.array([0]))

    @given(st.integers(2, 10), st.integers(1, 12))
    def test_gradient_rows_sum_to_zero(self, num_classes, n):
        rng = np.random.default_rng(n * 100 + num_classes)
        logits = rng.standard_normal((n, num_classes))
        targets = rng.integers(0, num_classes, n)
        _, grad = softmax_cross_entropy(logits, targets)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestTopK:
    def test_top_k_sets_membership(self):
        probs = np.array([[0.1, 0.5, 0.4], [0.8, 0.1, 0.1]])
        sets = top_k_sets(probs, 2)
        assert set(sets[0]) == {1, 2}
        assert 0 in set(sets[1])

    def test_top_k_hits(self):
        probs = np.array([[0.1, 0.5, 0.4], [0.8, 0.1, 0.1]])
        hits = top_k_hits(probs, np.array([2, 1]), 2)
        assert hits[0] and not hits[1]

    def test_error_monotone_in_k(self):
        rng = np.random.default_rng(5)
        probs = rng.dirichlet(np.ones(10), size=50)
        targets = rng.integers(0, 10, 50)
        errors = [top_k_error(probs, targets, k) for k in range(1, 11)]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))
        assert errors[-1] == 0.0  # k = C always hits

    def test_k_larger_than_classes_clamped(self):
        probs = np.array([[0.9, 0.1]])
        assert top_k_error(probs, np.array([1]), 10) == 0.0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            top_k_sets(np.ones((1, 3)), 0)

    def test_weighted_error_ignores_masked(self):
        probs = np.array([[0.9, 0.1], [0.9, 0.1]])
        targets = np.array([1, 1])
        # Second row masked; first row misses top-1.
        err = top_k_error(probs, targets, 1, weights=np.array([1.0, 0.0]))
        assert err == 1.0

    def test_empty_input(self):
        assert top_k_error(np.zeros((0, 4)), np.zeros(0, dtype=int), 2) == 0.0
