"""Tests for the stacked LSTM classifier: training, inference, streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import NetworkConfig, StackedLSTMClassifier
from repro.nn.gradcheck import check_gradients
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optimizers import Adam


def _cycle_fragment(num_classes=4, repeats=30, input_dim=None):
    """Deterministic cyclic signature stream: 0,1,2,...,C-1,0,1,..."""
    input_dim = input_dim or num_classes
    pattern = np.tile(np.arange(num_classes), repeats)
    eye = np.eye(num_classes)
    inputs = eye[pattern[:-1]]
    if input_dim > num_classes:
        inputs = np.concatenate(
            [inputs, np.zeros((inputs.shape[0], input_dim - num_classes))], axis=1
        )
    return inputs, pattern[1:]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(0, (4,), 3)
        with pytest.raises(ValueError):
            NetworkConfig(4, (), 3)
        with pytest.raises(ValueError):
            NetworkConfig(4, (0,), 3)
        with pytest.raises(ValueError):
            NetworkConfig(4, (4,), 1)

    def test_parameter_count_two_layers(self):
        model = StackedLSTMClassifier(NetworkConfig(3, (5, 4), 6), rng=0)
        expected = (3 * 20 + 5 * 20 + 20) + (5 * 16 + 4 * 16 + 16) + (4 * 6 + 6)
        assert model.parameter_count() == expected
        assert model.memory_bytes() == expected * 8


class TestEndToEndGradient:
    def test_stacked_gradcheck(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (5, 4), 3), rng=13)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 2, 4))
        y = rng.integers(0, 3, size=(5, 2))

        def loss_and_grads():
            logits, _ = model.forward(x, keep_cache=True)
            loss, dflat = softmax_cross_entropy(logits.reshape(-1, 3), y.reshape(-1))
            model.backward(dflat.reshape(5, 2, 3))
            return loss, model.gradients()

        errors = check_gradients(loss_and_grads, model.parameters(), max_entries_per_param=12)
        assert max(errors.values()) < 1e-5, errors


class TestTraining:
    def test_learns_deterministic_cycle(self):
        frag = _cycle_fragment(num_classes=4, repeats=25)
        model = StackedLSTMClassifier(NetworkConfig(4, (16,), 4), rng=0)
        history = model.fit([frag], epochs=30, batch_size=4, bptt_len=16, rng=0)
        assert history.losses[-1] < history.losses[0]
        assert model.top_k_validation_error([frag], 1) < 0.05

    def test_loss_decreases(self):
        frag = _cycle_fragment(num_classes=3, repeats=20)
        model = StackedLSTMClassifier(NetworkConfig(3, (8,), 3), rng=1)
        history = model.fit(
            [frag], epochs=20, batch_size=2, bptt_len=10, optimizer=Adam(0.02), rng=1
        )
        assert history.losses[-1] < history.losses[0] * 0.5

    def test_validation_tracking(self):
        frag = _cycle_fragment()
        model = StackedLSTMClassifier(NetworkConfig(4, (8,), 4), rng=2)
        history = model.fit(
            [frag], epochs=3, validation_fragments=[frag], validation_k=2, rng=0
        )
        assert len(history.validation_errors) == 3

    def test_callback_invoked(self):
        frag = _cycle_fragment()
        calls = []
        model = StackedLSTMClassifier(NetworkConfig(4, (4,), 4), rng=3)
        model.fit([frag], epochs=2, callback=lambda e, l: calls.append((e, l)), rng=0)
        assert [c[0] for c in calls] == [0, 1]

    def test_empty_fragments_rejected(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (4,), 4), rng=0)
        with pytest.raises(ValueError):
            model.fit([], epochs=1)

    def test_bad_epochs_rejected(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (4,), 4), rng=0)
        with pytest.raises(ValueError):
            model.fit([_cycle_fragment()], epochs=0)

    def test_reproducible_training(self):
        frag = _cycle_fragment()
        results = []
        for _ in range(2):
            model = StackedLSTMClassifier(NetworkConfig(4, (8,), 4), rng=5)
            history = model.fit([frag], epochs=3, optimizer=Adam(0.01), rng=9)
            results.append(history.losses)
        np.testing.assert_allclose(results[0], results[1], atol=1e-12)


class TestInference:
    def test_predict_proba_shape_and_normalization(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (6,), 5), rng=0)
        probs = model.predict_proba(np.random.default_rng(0).standard_normal((7, 4)))
        assert probs.shape == (7, 5)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_proba_rejects_3d(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (6,), 5), rng=0)
        with pytest.raises(ValueError):
            model.predict_proba(np.zeros((2, 3, 4)))

    def test_streaming_matches_batch(self):
        """Online step() must reproduce predict_proba exactly."""
        model = StackedLSTMClassifier(NetworkConfig(4, (6, 5), 5), rng=4)
        x = np.random.default_rng(1).standard_normal((9, 4))
        batch_probs = model.predict_proba(x)
        states = model.init_state(1)
        for t in range(9):
            probs, states = model.step(x[t], states)
            np.testing.assert_allclose(probs, batch_probs[t], atol=1e-12)

    def test_step_batched_input(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (6,), 5), rng=0)
        states = model.init_state(3)
        probs, states = model.step(np.zeros((3, 4)), states)
        assert probs.shape == (3, 5)

    def test_top_k_error_zero_when_k_equals_classes(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (6,), 5), rng=0)
        frag = (np.zeros((4, 4)), np.array([0, 1, 2, 3]))
        assert model.top_k_validation_error([frag], 5) == 0.0

    def test_top_k_error_empty(self):
        model = StackedLSTMClassifier(NetworkConfig(4, (6,), 5), rng=0)
        assert model.top_k_validation_error([], 1) == 0.0


class TestStateBatching:
    @pytest.fixture()
    def model(self):
        return StackedLSTMClassifier(NetworkConfig(4, (6, 5), 4), rng=0)

    def test_stack_split_roundtrip(self, model):
        per_stream = [model.init_state(1) for _ in range(3)]
        stacked = model.stack_states(per_stream)
        assert [s.batch_size for s in stacked] == [3, 3]
        restored = model.split_states(stacked)
        assert len(restored) == 3
        assert all(len(states) == 2 for states in restored)

    def test_stack_rejects_mismatched_depth(self, model):
        with pytest.raises(ValueError):
            model.stack_states([model.init_state(1), model.init_state(1)[:1]])
        with pytest.raises(ValueError):
            model.stack_states([])

    def test_select_states_subsets_every_layer(self, model):
        states = model.init_state(4)
        subset = model.select_states(states, [1, 3])
        assert all(s.batch_size == 2 for s in subset)

    def test_batched_step_matches_per_stream_steps(self, model):
        """One (B, D) step must advance each row like a lone (1, D) step."""
        rng = np.random.default_rng(7)
        xs = rng.normal(size=(3, 4))
        singles = []
        for row in xs:
            probs, _ = model.step(row, model.init_state(1))
            singles.append(probs)
        batched_probs, batched_states = model.step(xs, model.init_state(3))
        np.testing.assert_allclose(batched_probs, np.stack(singles), rtol=0, atol=1e-12)
        assert all(s.batch_size == 3 for s in batched_states)
