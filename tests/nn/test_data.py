"""Tests for windowing, batching and one-hot encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.data import (
    SequenceWindow,
    iter_batches,
    make_windows,
    one_hot,
    pad_batch,
)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_2d_indices(self):
        out = one_hot(np.array([[0], [1]]), 2)
        assert out.shape == (2, 1, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=30))
    def test_rows_sum_to_one(self, idx):
        out = one_hot(np.array(idx), 10)
        np.testing.assert_array_equal(out.sum(axis=-1), 1.0)


def _fragment(length, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((length, dim)), rng.integers(0, 5, length)


class TestMakeWindows:
    def test_exact_division(self):
        windows = make_windows([_fragment(20)], bptt_len=5)
        assert len(windows) == 4
        assert all(len(w) == 5 for w in windows)

    def test_remainder_kept_if_long_enough(self):
        windows = make_windows([_fragment(12)], bptt_len=5)
        assert [len(w) for w in windows] == [5, 5, 2]

    def test_tiny_remainder_dropped(self):
        windows = make_windows([_fragment(11)], bptt_len=5, min_len=2)
        assert [len(w) for w in windows] == [5, 5]

    def test_single_package_fragment_kept_at_start(self):
        windows = make_windows([_fragment(1)], bptt_len=5)
        assert len(windows) == 1

    def test_windows_preserve_content(self):
        inputs, targets = _fragment(7, seed=3)
        windows = make_windows([(inputs, targets)], bptt_len=4)
        np.testing.assert_array_equal(windows[0].inputs, inputs[:4])
        np.testing.assert_array_equal(windows[1].targets, targets[4:])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            make_windows([(np.zeros((3, 2)), np.zeros(4, dtype=int))], bptt_len=2)

    def test_bad_bptt_rejected(self):
        with pytest.raises(ValueError):
            make_windows([], bptt_len=0)


class TestPadBatch:
    def test_padding_and_mask(self):
        windows = [
            SequenceWindow(np.ones((3, 2)), np.array([1, 2, 3])),
            SequenceWindow(np.ones((2, 2)), np.array([4, 5])),
        ]
        batch = pad_batch(windows)
        assert batch.inputs.shape == (3, 2, 2)
        np.testing.assert_array_equal(batch.mask[:, 0], [1, 1, 1])
        np.testing.assert_array_equal(batch.mask[:, 1], [1, 1, 0])
        np.testing.assert_array_equal(batch.inputs[2, 1], 0.0)
        assert batch.targets[1, 1] == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pad_batch([])

    def test_dim_mismatch_rejected(self):
        windows = [
            SequenceWindow(np.ones((2, 2)), np.array([0, 1])),
            SequenceWindow(np.ones((2, 3)), np.array([0, 1])),
        ]
        with pytest.raises(ValueError):
            pad_batch(windows)


class TestIterBatches:
    def test_covers_all_windows_once(self):
        windows = make_windows([_fragment(50, seed=1)], bptt_len=5)
        seen = 0
        for batch in iter_batches(windows, batch_size=3, shuffle=True, rng=0):
            seen += int(batch.mask.sum())
        assert seen == 50

    def test_shuffle_reproducible(self):
        windows = make_windows([_fragment(40, seed=2)], bptt_len=4)
        run1 = [b.targets.copy() for b in iter_batches(windows, 4, rng=7)]
        run2 = [b.targets.copy() for b in iter_batches(windows, 4, rng=7)]
        for a, b in zip(run1, run2):
            np.testing.assert_array_equal(a, b)

    def test_no_shuffle_preserves_order(self):
        windows = make_windows([_fragment(12, seed=4)], bptt_len=4)
        batches = list(iter_batches(windows, batch_size=1, shuffle=False))
        np.testing.assert_array_equal(batches[0].targets[:, 0], windows[0].targets)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches([], 0))


class TestSequenceWindow:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            SequenceWindow(np.zeros((3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            SequenceWindow(np.zeros((3, 2)), np.zeros(2, dtype=int))
