"""Tests for the dense output layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.dense import DenseLayer
from repro.nn.gradcheck import check_gradients
from repro.nn.losses import softmax_cross_entropy


class TestDense:
    def test_forward_shapes(self):
        layer = DenseLayer(4, 3, rng=0)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)
        assert layer.forward(np.zeros((2, 5, 4))).shape == (2, 5, 3)

    def test_linear_in_input(self):
        layer = DenseLayer(3, 2, rng=1)
        x = np.random.default_rng(0).standard_normal((4, 3))
        bias_out = layer.forward(np.zeros((1, 3)), keep_cache=False)
        y = layer.forward(2.0 * x, keep_cache=False)
        y_single = layer.forward(x, keep_cache=False)
        np.testing.assert_allclose(y - bias_out, 2.0 * (y_single - bias_out), atol=1e-12)

    def test_gradcheck(self):
        layer = DenseLayer(4, 3, rng=2)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((3, 2, 4))
        targets = rng.integers(0, 3, size=6)

        def loss_and_grads():
            logits = layer.forward(x, keep_cache=True)
            loss, dflat = softmax_cross_entropy(logits.reshape(-1, 3), targets)
            layer.backward(dflat.reshape(3, 2, 3))
            return loss, layer.grads

        errors = check_gradients(loss_and_grads, layer.params)
        assert max(errors.values()) < 1e-6, errors

    def test_input_gradient(self):
        layer = DenseLayer(3, 2, rng=4)
        x = np.random.default_rng(5).standard_normal((4, 3))
        logits = layer.forward(x, keep_cache=True)
        d_out = np.ones_like(logits)
        dx = layer.backward(d_out)
        np.testing.assert_allclose(dx, d_out @ layer.params["W"].T, atol=1e-12)

    def test_backward_without_forward_raises(self):
        layer = DenseLayer(2, 2, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_rejects_wrong_feature_size(self):
        layer = DenseLayer(3, 2, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 4)))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 2)
