"""Drift monitor unit tests: baseline, EWMA trip wire, state round trip."""

from __future__ import annotations

import json

import pytest

from repro.core.stream_engine import LEVEL_PACKAGE, LEVEL_TIMESERIES
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import DriftMonitorBank, DriftMonitorConfig
from repro.serve.alerts import AlertConfig, AlertPipeline, Severity

FAST = DriftMonitorConfig(
    baseline_packages=50,
    min_packages=60,
    alpha=0.05,
    threshold=0.2,
    cooldown=30.0,
)


def _feed(bank, stream, start, count, level, step=1.0):
    """Feed ``count`` packages of one verdict level; collect fired alerts."""
    fired = []
    for i in range(count):
        seq = start + i
        alert = bank.observe(stream, seq, seq * step, level)
        if alert is not None:
            fired.append(alert)
    return fired


class TestConfig:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError, match="baseline_packages"):
            DriftMonitorConfig(baseline_packages=0).validate()
        with pytest.raises(ValueError, match="min_packages"):
            DriftMonitorConfig(baseline_packages=10, min_packages=5).validate()
        with pytest.raises(ValueError, match="alpha"):
            DriftMonitorConfig(alpha=0.0).validate()
        with pytest.raises(ValueError, match="threshold"):
            DriftMonitorConfig(threshold=1.5).validate()


class TestDriftDetection:
    def test_rising_fp_rate_fires_a_package_drift_alert(self):
        bank = DriftMonitorBank(FAST)
        assert _feed(bank, "s1", 0, 50, 0) == []  # clean baseline
        fired = _feed(bank, "s1", 50, 250, LEVEL_PACKAGE)
        assert fired, "rising level-1 rate never fired"
        first = fired[0]
        assert first.kind == "drift:package"
        assert first.stream == "s1"
        assert first.level == 0
        assert first.severity == Severity.MEDIUM

    def test_rising_lstm_miss_rate_fires_timeseries_drift(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        fired = _feed(bank, "s1", 50, 250, LEVEL_TIMESERIES)
        assert fired and fired[0].kind == "drift:timeseries"

    def test_clean_stream_never_fires(self):
        bank = DriftMonitorBank(FAST)
        assert _feed(bank, "s1", 0, 1000, 0) == []

    def test_anomalous_baseline_is_the_reference(self):
        # A stream that was already 100% anomalous at attach time shows
        # no *rise* — drift measures aging, not absolute badness.
        bank = DriftMonitorBank(FAST)
        assert _feed(bank, "s1", 0, 1000, LEVEL_PACKAGE) == []

    def test_cooldown_spaces_repeat_alerts_on_the_stream_clock(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        fired = _feed(bank, "s1", 50, 550, LEVEL_PACKAGE)
        assert len(fired) >= 2
        for earlier, later in zip(fired, fired[1:]):
            assert later.time - earlier.time >= FAST.cooldown

    def test_streams_are_independent(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "good", 0, 50, 0)
        _feed(bank, "bad", 0, 50, 0)
        fired_bad = _feed(bank, "bad", 50, 250, LEVEL_PACKAGE)
        fired_good = _feed(bank, "good", 50, 250, 0)
        assert fired_bad and not fired_good
        stats = bank.stats()
        assert stats["streams"]["bad"]["drift_alerts"] == len(fired_bad)
        assert stats["streams"]["good"]["drift_alerts"] == 0

    def test_route_rides_the_drift_alert(self):
        bank = DriftMonitorBank(FAST)
        for i in range(400):
            alert = bank.observe(
                "s1",
                i,
                float(i),
                LEVEL_PACKAGE if i >= 50 else 0,
                scenario="gas_pipeline",
                version=3,
            )
            if alert is not None:
                assert alert.scenario == "gas_pipeline"
                assert alert.version == 3
                return
        raise AssertionError("no drift alert fired")


class TestStateRoundTrip:
    def test_state_survives_json_and_continues_identically(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        _feed(bank, "s1", 50, 100, LEVEL_PACKAGE)
        restored = DriftMonitorBank.from_state(
            json.loads(json.dumps(bank.state_dict()))
        )
        assert restored.state_dict() == bank.state_dict()
        live_tail = _feed(bank, "s1", 150, 200, LEVEL_PACKAGE)
        restored_tail = _feed(restored, "s1", 150, 200, LEVEL_PACKAGE)
        assert [a.to_dict() for a in live_tail] == [
            a.to_dict() for a in restored_tail
        ]
        assert restored.state_dict() == bank.state_dict()


class TestPipelineInjection:
    def test_inject_reaches_sinks_without_touching_dedup_state(self):
        seen = []
        pipeline = AlertPipeline([seen.append], config=AlertConfig())
        baseline_stats = pipeline.stats()
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        fired = _feed(bank, "s1", 50, 250, LEVEL_PACKAGE)
        for alert in fired:
            pipeline.inject(alert)
        assert [a.kind for a in seen] == ["drift:package"] * len(fired)
        stats = pipeline.stats()
        assert stats["injected"] == len(fired)
        # Verdict-side bookkeeping untouched: bit-identical alert stream.
        assert stats["streams"] == baseline_stats["streams"]
        assert stats["emitted"] == 0

    def test_drift_metric_counts_by_kind(self):
        registry = MetricsRegistry()
        bank = DriftMonitorBank(FAST, metrics=registry)
        _feed(bank, "s1", 0, 50, 0)
        fired = _feed(bank, "s1", 50, 250, LEVEL_PACKAGE)
        samples = registry.snapshot()["drift_alerts_total"]["samples"]
        assert samples == [
            {"labels": {"kind": "package"}, "value": len(fired)}
        ]


class TestByKindCounts:
    def test_stats_aggregate_fired_counts_by_kind_across_streams(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        package_fired = _feed(bank, "s1", 50, 250, LEVEL_PACKAGE)
        _feed(bank, "s2", 0, 50, 0)
        ts_fired = _feed(bank, "s2", 50, 250, LEVEL_TIMESERIES)
        assert package_fired and ts_fired
        stats = bank.stats()
        assert stats["by_kind"] == {
            "package": len(package_fired),
            "timeseries": len(ts_fired),
            "anomaly": 0,
        }
        assert stats["drift_alerts"] == sum(stats["by_kind"].values())

    def test_by_kind_rides_the_state_round_trip(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        fired = _feed(bank, "s1", 50, 250, LEVEL_PACKAGE)
        assert fired
        restored = DriftMonitorBank.from_state(
            json.loads(json.dumps(bank.state_dict()))
        )
        assert restored.stats()["by_kind"] == bank.stats()["by_kind"]

    def test_pre_by_kind_checkpoints_load_with_empty_breakdown(self):
        bank = DriftMonitorBank(FAST)
        _feed(bank, "s1", 0, 50, 0)
        assert _feed(bank, "s1", 50, 250, LEVEL_PACKAGE)
        state = json.loads(json.dumps(bank.state_dict()))
        for payload in state["streams"].values():
            del payload["fired_by_kind"]  # a checkpoint from before PR 10
        restored = DriftMonitorBank.from_state(state)
        # Totals survive; the breakdown restarts empty rather than failing.
        assert restored.stats()["drift_alerts"] == bank.stats()["drift_alerts"]
        assert restored.stats()["by_kind"] == {
            "package": 0, "timeseries": 0, "anomaly": 0,
        }
