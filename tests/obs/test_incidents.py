"""Incident correlator unit tests: grouping, lifecycle, state round trip."""

from __future__ import annotations

import json

import pytest

from repro.obs.incidents import CorrelatorConfig, Incident, IncidentCorrelator
from repro.obs.metrics import MetricsRegistry
from repro.serve.alerts import Alert, Severity


def _alert(
    stream: str = "site-00",
    seq: int = 0,
    time: float = 0.0,
    level: int = 1,
    severity: Severity = Severity.HIGH,
    scenario: str | None = "gas_pipeline",
    version: int | None = 1,
    kind: str = "verdict",
) -> Alert:
    return Alert(
        stream=stream,
        seq=seq,
        time=time,
        level=level,
        severity=severity,
        escalated=False,
        repeats=0,
        label=1,
        scenario=scenario,
        version=version,
        kind=kind,
    )


class TestConfig:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError, match="window"):
            CorrelatorConfig(window=0).validate()
        with pytest.raises(ValueError, match="resolve_after"):
            CorrelatorConfig(window=30, resolve_after=10).validate()
        with pytest.raises(ValueError, match="group_prefix_parts"):
            CorrelatorConfig(group_prefix_parts=-1).validate()
        with pytest.raises(ValueError, match="max_open"):
            CorrelatorConfig(max_open=0).validate()


class TestCorrelation:
    def test_multi_stream_burst_folds_into_one_incident(self):
        correlator = IncidentCorrelator()
        for i, stream in enumerate(["a", "b", "c", "a", "b"]):
            correlator(_alert(stream=stream, seq=i, time=float(i)))
        open_incidents = correlator.open_incidents()
        assert len(open_incidents) == 1
        incident = open_incidents[0]
        assert incident.alerts == 5
        assert sorted(incident.streams) == ["a", "b", "c"]
        assert incident.streams["a"] == 2
        assert incident.first_seen == 0.0 and incident.last_seen == 4.0

    def test_distinct_model_routes_open_distinct_incidents(self):
        correlator = IncidentCorrelator()
        correlator(_alert(scenario="gas_pipeline", version=1, time=0.0))
        correlator(_alert(scenario="water_tank", version=1, time=1.0))
        correlator(_alert(scenario="gas_pipeline", version=2, time=2.0))
        assert len(correlator.open_incidents()) == 3

    def test_group_prefix_splits_by_site(self):
        correlator = IncidentCorrelator(CorrelatorConfig(group_prefix_parts=2))
        correlator(_alert(stream="site-00-gas", time=0.0))
        correlator(_alert(stream="site-00-aux", time=1.0))
        correlator(_alert(stream="site-01-gas", time=2.0))
        groups = {inc.group for inc in correlator.open_incidents()}
        assert groups == {"site-00", "site-01"}

    def test_severity_is_max_of_members(self):
        correlator = IncidentCorrelator()
        correlator(_alert(severity=Severity.MEDIUM, time=0.0))
        correlator(_alert(severity=Severity.CRITICAL, time=1.0))
        correlator(_alert(severity=Severity.LOW, time=2.0))
        incident = correlator.open_incidents()[0]
        assert incident.severity == int(Severity.CRITICAL)
        assert incident.to_dict()["severity"] == "CRITICAL"

    def test_kind_counters_track_drift_vs_verdict(self):
        correlator = IncidentCorrelator()
        correlator(_alert(time=0.0))
        correlator(_alert(time=1.0, kind="drift:package"))
        incident = correlator.open_incidents()[0]
        assert incident.kinds == {"verdict": 1, "drift:package": 1}


class TestLifecycle:
    def test_quiet_gap_past_window_opens_a_fresh_incident(self):
        correlator = IncidentCorrelator(
            CorrelatorConfig(window=10.0, resolve_after=100.0)
        )
        correlator(_alert(time=0.0))
        correlator(_alert(time=5.0))  # within window: same incident
        correlator(_alert(time=50.0))  # past window: new incident
        assert len(correlator.open_incidents()) == 1
        resolved = correlator.resolved_incidents()
        assert len(resolved) == 1
        assert resolved[0].status == "resolved"
        assert resolved[0].alerts == 2

    def test_resolve_after_sweeps_idle_incidents(self):
        correlator = IncidentCorrelator(
            CorrelatorConfig(window=10.0, resolve_after=30.0)
        )
        correlator(_alert(scenario="gas_pipeline", time=0.0))
        # A different key advances the global clock past resolve_after.
        correlator(_alert(scenario="water_tank", time=100.0))
        assert len(correlator.open_incidents()) == 1
        assert correlator.open_incidents()[0].scenario == "water_tank"
        assert len(correlator.resolved_incidents()) == 1

    def test_open_store_is_bounded(self):
        correlator = IncidentCorrelator(
            CorrelatorConfig(window=10.0, resolve_after=1000.0, max_open=3)
        )
        for i in range(6):
            correlator(_alert(scenario=f"s{i}", time=float(i)))
        assert len(correlator.open_incidents()) == 3
        stats = correlator.stats()
        assert stats["opened_total"] == 6
        assert stats["resolved_total"] == 3

    def test_resolved_store_is_bounded(self):
        correlator = IncidentCorrelator(
            CorrelatorConfig(
                window=1.0, resolve_after=1.0, max_open=1, max_resolved=2
            )
        )
        for i in range(6):
            correlator(_alert(time=float(i * 100)))
        assert len(correlator.resolved_incidents()) == 2
        assert correlator.stats()["resolved_total"] == 5

    def test_incident_ids_are_sequential(self):
        correlator = IncidentCorrelator()
        correlator(_alert(scenario="a", time=0.0))
        correlator(_alert(scenario="b", time=1.0))
        assert [inc.id for inc in correlator.open_incidents()] == [1, 2]


class TestStateRoundTrip:
    def _populated(self) -> IncidentCorrelator:
        correlator = IncidentCorrelator(
            CorrelatorConfig(window=10.0, resolve_after=30.0)
        )
        for i, stream in enumerate(["a", "b", "c"]):
            correlator(_alert(stream=stream, seq=i, time=float(i)))
        correlator(_alert(scenario="water_tank", time=200.0))
        return correlator

    def test_state_dict_survives_json(self):
        correlator = self._populated()
        state = json.loads(json.dumps(correlator.state_dict()))
        restored = IncidentCorrelator.from_state(state)
        assert restored.state_dict() == correlator.state_dict()
        assert restored.snapshot() == correlator.snapshot()

    def test_restored_correlator_continues_identically(self):
        correlator = self._populated()
        restored = IncidentCorrelator.from_state(
            json.loads(json.dumps(correlator.state_dict()))
        )
        tail = [
            _alert(stream="d", seq=9, time=205.0, scenario="water_tank"),
            _alert(stream="e", seq=10, time=400.0),
        ]
        for alert in tail:
            correlator(alert)
            restored(alert)
        assert restored.state_dict() == correlator.state_dict()

    def test_incident_dict_round_trip(self):
        correlator = self._populated()
        for incident in correlator.open_incidents():
            clone = Incident.from_dict(
                json.loads(json.dumps(incident.to_dict()))
            )
            assert clone.to_dict() == incident.to_dict()


class TestMetricsInstrumentation:
    def test_open_gauge_and_total_counter(self):
        registry = MetricsRegistry()
        correlator = IncidentCorrelator(
            CorrelatorConfig(window=10.0, resolve_after=30.0), metrics=registry
        )
        correlator(_alert(scenario="gas_pipeline", time=0.0))
        correlator(_alert(scenario="gas_pipeline", time=1.0))
        correlator(_alert(scenario="water_tank", time=2.0))
        snapshot = registry.snapshot()
        assert snapshot["incidents_open"]["samples"][0]["value"] == 2
        totals = {
            sample["labels"]["scenario"]: sample["value"]
            for sample in snapshot["incidents_total"]["samples"]
        }
        assert totals == {"gas_pipeline": 1, "water_tank": 1}
