"""Metrics registry unit tests: instruments, snapshot, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("pkts_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("pkts_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways_and_ratchets(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        assert gauge.value == 7
        gauge.max(5)  # lower: no effect
        assert gauge.value == 7
        gauge.max(12)
        assert gauge.value == 12

    def test_histogram_buckets_and_percentile(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(5.56)
        # 2 in <=0.01, 1 in <=0.1, 1 in <=1.0, 1 overflow
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.percentile(50) == 0.01  # rank 2 of 5 -> first bucket
        assert hist.percentile(60) == 0.1
        assert hist.percentile(100) == float("inf")
        assert MetricsRegistry().histogram("empty").percentile(99) == 0.0

    def test_histogram_timer_observes_duration(self):
        hist = MetricsRegistry().histogram("t")
        with hist.time():
            pass
        assert hist.count == 1
        assert 0 <= hist.sum < 1.0

    def test_histogram_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("worse", buckets=())


class TestRegistry:
    def test_same_name_and_labels_is_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("frames_total", protocol="modbus")
        b = registry.counter("frames_total", protocol="modbus")
        c = registry.counter("frames_total", protocol="dnp3")
        assert a is b
        assert a is not c

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")

    def test_histogram_bucket_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered with"):
            registry.histogram("lat", buckets=(1.0, 3.0))

    def test_namespace_prefixes_every_family(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("pkts_total").inc()
        assert "repro_pkts_total" in registry.snapshot()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help me", protocol="modbus").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["help"] == "help me"
        assert snap["c_total"]["samples"] == [
            {"labels": {"protocol": "modbus"}, "value": 2}
        ]
        hist_sample = snap["h"]["samples"][0]
        assert hist_sample["count"] == 1
        assert hist_sample["buckets"] == {"1": 1, "+Inf": 1}

    def test_concurrent_create_or_get_is_safe(self):
        registry = MetricsRegistry()
        instruments = []

        def grab():
            instruments.append(registry.counter("shared_total", w="1"))

        threads = [threading.Thread(target=grab) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(i is instruments[0] for i in instruments)


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", "Frames", protocol="modbus").inc(7)
        registry.gauge("depth").set(3)
        text = registry.render_prometheus()
        assert "# HELP frames_total Frames" in text
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{protocol="modbus"} 7' in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", label='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert 'label="a\\"b\\\\c\\nd"' in text

    def test_default_bucket_ladders_are_sane(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert list(DEFAULT_SIZE_BUCKETS) == sorted(DEFAULT_SIZE_BUCKETS)


def _unescape_label_value(escaped: str) -> str:
    """Decode a Prometheus-escaped label value (what a scraper does)."""
    out: list[str] = []
    i = 0
    while i < len(escaped):
        ch = escaped[i]
        if ch == "\\":
            nxt = escaped[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestPrometheusConformance:
    """Exposition-format conformance a real scraper would rely on."""

    @pytest.mark.parametrize(
        "value",
        [
            "back\\slash",
            'quo"te',
            "new\nline",
            'all\\of"them\ntogether',
            "\\n is not a newline",  # literal backslash-n must survive
        ],
    )
    def test_label_value_escaping_round_trips(self, value):
        registry = MetricsRegistry()
        registry.counter("rt_total", label=value).inc()
        text = registry.render_prometheus()
        line = next(
            ln for ln in text.splitlines() if ln.startswith("rt_total{")
        )
        escaped = line[len('rt_total{label="') : line.rindex('"')]
        assert "\n" not in escaped  # exposition stays one line per sample
        assert _unescape_label_value(escaped) == value

    def test_histogram_inf_bucket_equals_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0, 50.0, float("inf")):
            hist.observe(value)
        lines = registry.render_prometheus().splitlines()
        inf_line = next(
            ln for ln in lines if ln.startswith('lat_seconds_bucket{le="+Inf"}')
        )
        count_line = next(
            ln for ln in lines if ln.startswith("lat_seconds_count")
        )
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1] == "5"

    def test_histogram_count_and_sum_match_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sz_bytes", buckets=(10.0, 100.0))
        samples = [3.0, 30.0, 300.0, 7.5]
        for value in samples:
            hist.observe(value)
        lines = registry.render_prometheus().splitlines()
        count = float(
            next(ln for ln in lines if ln.startswith("sz_bytes_count"))
            .rsplit(" ", 1)[1]
        )
        total = float(
            next(ln for ln in lines if ln.startswith("sz_bytes_sum"))
            .rsplit(" ", 1)[1]
        )
        assert count == len(samples)
        assert total == pytest.approx(sum(samples))

    def test_histogram_buckets_are_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        hist = registry.histogram("m_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        counts = [
            int(ln.rsplit(" ", 1)[1])
            for ln in registry.render_prometheus().splitlines()
            if ln.startswith("m_seconds_bucket{")
        ]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert counts[-1] == 4  # +Inf bucket last and == count
