"""Read-only HTTP API tests: routing, serialization, real sockets."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.historian import Historian
from repro.obs.httpapi import ObsServer, start_obs_in_thread
from repro.obs.metrics import MetricsRegistry


class _StubGateway:
    """Just enough stats() surface for dashboard/stats endpoints."""

    def stats(self):
        return {
            "mode": "single",
            "processed": 42,
            "streams": 2,
            "live_sessions": 1,
            "peak_queue_depth": 5,
            "checkpoints_written": 0,
            "alerts": {"emitted": 3, "suppressed": 1},
            "transport": {
                "modbus": {
                    "connections": 2,
                    "frames_decoded": 43,
                    "bytes_discarded": 0,
                    "resyncs": 0,
                }
            },
            "routes": {
                "plant-1": {
                    "scenario": "gas_pipeline",
                    "version": 1,
                    "protocol": "modbus",
                    "shard": 0,
                    "packages": 42,
                }
            },
        }


def _get(server: ObsServer, path: str, params=None):
    return server.handle(path, params or {})


class TestRouting:
    def test_unknown_path_is_404(self):
        server = ObsServer(gateway=_StubGateway())
        with pytest.raises(Exception, match="unknown path"):
            _get(server, "/nope")

    def test_stats_json(self):
        server = ObsServer(gateway=_StubGateway())
        content_type, body = _get(server, "/stats")
        assert content_type == "application/json"
        assert json.loads(body)["processed"] == 42

    def test_metrics_exposition(self):
        registry = MetricsRegistry()
        registry.counter("pkts_total").inc(9)
        server = ObsServer(metrics=registry)
        content_type, body = _get(server, "/metrics")
        assert content_type.startswith("text/plain")
        assert b"pkts_total 9" in body

    def test_endpoints_404_when_component_missing(self):
        server = ObsServer(gateway=_StubGateway())
        for path in ("/metrics", "/alerts/recent", "/registry"):
            with pytest.raises(Exception, match="404|no "):
                _get(server, path)
        with pytest.raises(Exception, match="no historian"):
            _get(server, "/historian/query")

    def test_alerts_recent_respects_limit(self):
        from repro.serve.alerts import RecentAlertsBuffer

        buffer = RecentAlertsBuffer(capacity=8)
        for i in range(5):
            buffer(_FakeAlert(i))
        server = ObsServer(recent_alerts=buffer)
        _, body = _get(server, "/alerts/recent", {"limit": "2"})
        alerts = json.loads(body)["alerts"]
        assert [a["seq"] for a in alerts] == [3, 4]

    def test_historian_query_params(self, tmp_path):
        historian = Historian(tmp_path / "h")
        for seq in range(6):
            historian.append(
                "k", "gas", 1, seq, 0, False, None, wall_time=100.0 + seq
            )
        server = ObsServer(historian=historian)
        try:
            _, body = _get(
                server,
                "/historian/query",
                {"stream": "k", "since": "102", "limit": "2"},
            )
            payload = json.loads(body)
            assert payload["count"] == 2
            assert [r["seq"] for r in payload["records"]] == [4, 5]
            with pytest.raises(Exception, match="unknown parameters"):
                _get(server, "/historian/query", {"bogus": "1"})
            with pytest.raises(Exception, match="must be a number"):
                _get(server, "/historian/query", {"since": "abc"})
            with pytest.raises(Exception, match="must be an integer"):
                _get(server, "/historian/query", {"limit": "two"})
            with pytest.raises(Exception, match="must be >= 0"):
                _get(server, "/historian/query", {"limit": "-3"})
        finally:
            historian.close()

    def test_traces_endpoints_serve_tracer_state(self):
        from repro.obs.tracing import TraceConfig, Tracer

        tracer = Tracer(TraceConfig(sample_every=1))
        for seq in range(4):
            span = tracer.start("plant", seq, 0.0)
            span.stages["decode"] = 0.001 * (seq + 1)
            tracer.finish(span, scenario="gas")
        server = ObsServer(tracer=tracer)
        _, body = _get(server, "/traces/recent", {"limit": "2"})
        payload = json.loads(body)
        assert payload["count"] == 2
        assert [s["seq"] for s in payload["spans"]] == [3, 2]
        _, body = _get(server, "/traces/slowest")
        rows = json.loads(body)["slowest"]
        assert rows[0]["seconds"] == pytest.approx(0.004)
        assert rows[0]["scenario"] == "gas"
        with pytest.raises(Exception, match="must be an integer"):
            _get(server, "/traces/recent", {"limit": "abc"})
        with pytest.raises(Exception, match="unknown parameters"):
            _get(server, "/traces/recent", {"bogus": "1"})

    def test_traces_endpoints_404_without_tracer(self):
        server = ObsServer(gateway=_StubGateway())
        for path in ("/traces/recent", "/traces/slowest"):
            with pytest.raises(Exception, match="no tracer"):
                _get(server, path)

    def test_tracer_adopted_from_gateway(self):
        from repro.obs.tracing import TraceConfig, Tracer

        gateway = _StubGateway()
        gateway.tracer = Tracer(TraceConfig(sample_every=1))
        server = ObsServer(gateway=gateway)
        _, body = _get(server, "/traces/recent")
        assert json.loads(body) == {"count": 0, "spans": []}

    def test_healthz_reports_uptime_and_version(self):
        from repro import __version__

        server = ObsServer()
        content_type, body = _get(server, "/healthz")
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        assert payload["uptime_seconds"] >= 0

    def test_incidents_endpoint_serves_correlator_snapshot(self):
        from repro.obs.incidents import CorrelatorConfig, IncidentCorrelator
        from repro.serve.alerts import Alert, Severity

        correlator = IncidentCorrelator(
            CorrelatorConfig(window=10.0, resolve_after=30.0)
        )
        for i, scenario in enumerate(["gas", "gas", "water"]):
            correlator(
                Alert(
                    stream=f"s{i}",
                    seq=i,
                    time=float(i),
                    level=1,
                    severity=Severity.HIGH,
                    escalated=False,
                    repeats=0,
                    label=1,
                    scenario=scenario,
                    version=1,
                )
            )
        server = ObsServer(incidents=correlator)
        _, body = _get(server, "/incidents")
        payload = json.loads(body)
        assert payload["counts"]["open"] == 2
        assert len(payload["open"]) == 2
        _, body = _get(server, "/incidents", {"limit": "1"})
        assert len(json.loads(body)["open"]) == 1

    def test_drift_endpoint_serves_monitor_stats(self):
        from repro.obs.monitors import DriftMonitorBank, DriftMonitorConfig

        bank = DriftMonitorBank(
            DriftMonitorConfig(baseline_packages=2, min_packages=3)
        )
        for i in range(5):
            bank.observe("s1", i, float(i), 0)
        server = ObsServer(monitors=bank)
        _, body = _get(server, "/drift")
        payload = json.loads(body)
        assert payload["streams"]["s1"]["warmed_up"] is True
        assert payload["drift_alerts"] == 0

    def test_incidents_and_drift_404_when_missing(self):
        server = ObsServer()
        with pytest.raises(Exception, match="no incident correlator"):
            _get(server, "/incidents")
        with pytest.raises(Exception, match="no drift monitors"):
            _get(server, "/drift")

    def test_dashboard_renders_html(self, tmp_path):
        from repro.obs.tracing import TraceConfig, Tracer

        tracer = Tracer(TraceConfig(sample_every=1))
        span = tracer.start("plant-1", 0, 0.0)
        span.stages.update({"decode": 0.001, "queue": 0.004})
        tracer.finish(span, scenario="gas_pipeline")
        historian = Historian(tmp_path / "h")
        try:
            server = ObsServer(
                gateway=_StubGateway(),
                historian=historian,
                tracer=tracer,
                title="t&t",
            )
            content_type, body = _get(server, "/")
            page = body.decode("utf-8")
        finally:
            historian.close()
        assert content_type == "text/html"
        assert "t&amp;t" in page  # titles are escaped
        assert "modbus" in page
        assert "gas_pipeline" in page
        assert "Historian" in page
        assert "Tracing" in page  # the stage waterfall panel
        assert "queue" in page


class _FakeAlert:
    def __init__(self, seq):
        self.seq = seq

    def to_dict(self):
        return {"seq": self.seq}


class TestOverSockets:
    def test_real_http_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("up").set(1)
        handle = start_obs_in_thread(
            ObsServer(gateway=_StubGateway(), metrics=registry)
        )
        try:
            host, port = handle.address
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert b"up 1" in resp.read()
            with urllib.request.urlopen(f"{base}/stats", timeout=5) as resp:
                assert json.loads(resp.read())["streams"] == 2
            with urllib.request.urlopen(f"{base}/", timeout=5) as resp:
                assert resp.headers["Content-Type"].startswith("text/html")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nothing", timeout=5)
            assert excinfo.value.code == 404
            # Read-only: non-GET methods are refused.
            request = urllib.request.Request(
                f"{base}/stats", data=b"x", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 405
            # ... and say what IS allowed, per RFC 9110.
            assert excinfo.value.headers["Allow"] == "GET, HEAD"
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
                assert json.loads(resp.read())["status"] == "ok"
        finally:
            handle.stop()

    def test_malformed_params_are_json_400s_not_tracebacks(self, tmp_path):
        """Satellite: a bad query param is a 400 with a machine-readable
        JSON error body — the server never answers 500 for client junk."""
        from repro.obs.incidents import IncidentCorrelator

        historian = Historian(tmp_path / "h")
        handle = start_obs_in_thread(
            ObsServer(historian=historian, incidents=IncidentCorrelator())
        )
        try:
            host, port = handle.address
            base = f"http://{host}:{port}"
            for path in (
                "/incidents?limit=abc",
                "/incidents?limit=-1",
                "/historian/query?since=noon",
                "/historian/query?limit=two",
                "/alerts/recent?limit=1",  # 404 (no buffer), still JSON
            ):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"{base}{path}", timeout=5)
                assert excinfo.value.code in (400, 404), path
                assert excinfo.value.code == (
                    404 if path.startswith("/alerts") else 400
                ), path
                content_type = excinfo.value.headers["Content-Type"]
                assert content_type.startswith("application/json"), path
                body = json.loads(excinfo.value.read())
                assert body["status"] == excinfo.value.code, path
                assert body["error"], path
        finally:
            handle.stop()
            historian.close()
