"""Tracing plane unit tests: deterministic sampling, the bounded span
store, slowest-exemplar retention, JSONL export and offline analysis.

The serving-path integration (spans through a live gateway, both
worker backends, kill+resume id stability) lives in
``tests/serve/test_tracing_e2e.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.tracing import (
    STAGE_ORDER,
    TraceConfig,
    Tracer,
    aggregate_spans,
    load_spans,
)


def _finish(tracer, stream, seq, stages, scenario=None, time=None):
    span = tracer.start(stream, seq, 0.0)
    assert span is not None, f"({stream}, {seq}) must be sampled"
    span.stages.update(stages)
    return tracer.finish(span, scenario=scenario, time=time)


class TestConfig:
    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="sample_every"):
            TraceConfig(sample_every=0).validate()
        with pytest.raises(ValueError, match="store_capacity"):
            TraceConfig(store_capacity=0).validate()
        with pytest.raises(ValueError, match="slowest_per_key"):
            TraceConfig(slowest_per_key=0).validate()

    def test_stage_vocabulary_is_fixed(self):
        assert STAGE_ORDER == (
            "decode", "route", "queue", "tick", "worker", "pipe", "deliver",
        )


class TestSampling:
    def test_sampling_is_deterministic_in_stream_and_seq(self):
        a = Tracer(TraceConfig(sample_every=8))
        b = Tracer(TraceConfig(sample_every=8))
        decisions = [a.should_sample("plant", seq) for seq in range(512)]
        assert decisions == [b.should_sample("plant", seq) for seq in range(512)]
        # Roughly one in sample_every, and never all-or-nothing.
        assert 512 // 16 < sum(decisions) < 512 // 4

    def test_sample_every_one_traces_everything(self):
        tracer = Tracer(TraceConfig(sample_every=1))
        assert all(tracer.should_sample("s", seq) for seq in range(64))

    def test_streams_sample_independently(self):
        tracer = Tracer(TraceConfig(sample_every=8))
        per_stream = {
            key: [seq for seq in range(256) if tracer.should_sample(key, seq)]
            for key in ("site-a", "site-b")
        }
        assert per_stream["site-a"] != per_stream["site-b"]

    def test_trace_ids_are_stable_and_distinct(self):
        assert Tracer.trace_id("plant", 7) == Tracer.trace_id("plant", 7)
        assert Tracer.trace_id("plant", 7) != Tracer.trace_id("plant", 8)
        assert Tracer.trace_id("plant", 7) != Tracer.trace_id("plan", 7)

    def test_start_returns_none_for_unsampled(self):
        tracer = Tracer(TraceConfig(sample_every=8))
        sampled = [seq for seq in range(64) if tracer.should_sample("s", seq)]
        skipped = [seq for seq in range(64) if seq not in sampled]
        assert tracer.start("s", skipped[0], 0.0) is None
        span = tracer.start("s", sampled[0], 0.0)
        assert span is not None
        assert span.trace_id == Tracer.trace_id("s", sampled[0])
        assert tracer.stats()["spans_started"] == 1


class TestStore:
    def test_finish_builds_the_record_and_recent_is_newest_first(self):
        tracer = Tracer(TraceConfig(sample_every=1))
        record = _finish(
            tracer, "plant", 3,
            {"decode": 0.001, "queue": 0.004},
            scenario="gas_pipeline", time=12.5,
        )
        assert record["trace_id"] == Tracer.trace_id("plant", 3)
        assert record["total_seconds"] == pytest.approx(0.005)
        assert record["scenario"] == "gas_pipeline"
        _finish(tracer, "plant", 4, {"decode": 0.002})
        recent = tracer.recent()
        assert [r["seq"] for r in recent] == [4, 3]
        assert [r["seq"] for r in tracer.recent(limit=1)] == [4]

    def test_store_is_bounded(self):
        tracer = Tracer(TraceConfig(sample_every=1, store_capacity=4))
        for seq in range(16):
            _finish(tracer, "plant", seq, {"decode": 0.001})
        stats = tracer.stats()
        assert stats["spans_finished"] == 16
        assert stats["spans_stored"] == 4
        assert [r["seq"] for r in tracer.recent()] == [15, 14, 13, 12]

    def test_slowest_keeps_trimmed_exemplars_per_scenario_and_stage(self):
        tracer = Tracer(TraceConfig(sample_every=1, slowest_per_key=2))
        for seq in range(8):
            _finish(
                tracer, "plant", seq,
                {"queue": 0.001 * (seq + 1)}, scenario="gas_pipeline",
            )
        _finish(tracer, "tank", 0, {"queue": 0.5}, scenario="water_tank")
        rows = tracer.slowest()
        assert [row["seconds"] for row in rows] == sorted(
            (row["seconds"] for row in rows), reverse=True
        )
        gas = [row for row in rows if row["scenario"] == "gas_pipeline"]
        assert [row["trace"]["seq"] for row in gas] == [7, 6]  # trimmed to 2
        assert rows[0]["scenario"] == "water_tank"
        assert rows[0]["stage"] == "queue"

    def test_stage_summary_shares_sum_to_one(self):
        tracer = Tracer(TraceConfig(sample_every=1))
        for seq in range(10):
            _finish(
                tracer, "plant", seq,
                {"decode": 0.001, "queue": 0.003, "deliver": 0.001},
            )
        summary = tracer.stage_summary()
        assert list(summary) == ["decode", "queue", "deliver"]  # STAGE_ORDER
        assert sum(row["share"] for row in summary.values()) == pytest.approx(1.0)
        assert summary["queue"]["share"] == pytest.approx(0.6)
        assert summary["queue"]["p50_seconds"] == pytest.approx(0.003)

    def test_histograms_reach_the_metrics_registry(self):
        metrics = MetricsRegistry()
        tracer = Tracer(TraceConfig(sample_every=1), metrics=metrics)
        _finish(tracer, "plant", 0, {"decode": 0.001}, scenario="gas_pipeline")
        _finish(tracer, "plant", 1, {"decode": 0.002}, scenario="gas_pipeline")
        exposition = metrics.render_prometheus()
        assert "trace_stage_seconds" in exposition
        assert 'stage="decode"' in exposition
        assert 'scenario="gas_pipeline"' in exposition


class TestExportAndOfflineAnalysis:
    def test_export_round_trips_through_load_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(TraceConfig(sample_every=1, export_path=str(path))) as tracer:
            for seq in range(6):
                _finish(
                    tracer, "plant", seq,
                    {"decode": 0.001, "queue": 0.002 * (seq + 1)},
                    scenario="gas_pipeline",
                )
            assert tracer.stats()["spans_exported"] == 6
        records = load_spans(path)
        assert [r["seq"] for r in records] == list(range(6))
        assert all(r["trace_id"] for r in records)

    def test_load_spans_rejects_garbage_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"stages": {"decode": 0.1}}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2: not JSON"):
            load_spans(path)
        path.write_text('{"stages": {"decode": 0.1}}\n{"no": "stages"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2: not a span record"):
            load_spans(path)

    def test_aggregate_spans_attributes_and_filters(self):
        records = [
            {
                "scenario": "gas_pipeline",
                "total_seconds": 0.004,
                "stages": {"decode": 0.001, "queue": 0.003},
            }
            for _ in range(4)
        ] + [
            {
                "scenario": "water_tank",
                "total_seconds": 0.1,
                "stages": {"queue": 0.1},
            }
        ]
        everything = aggregate_spans(records)
        assert everything["spans"] == 5
        gas = aggregate_spans(records, scenario="gas_pipeline")
        assert gas["spans"] == 4
        assert gas["total_p50_seconds"] == pytest.approx(0.004)
        assert gas["stages"]["decode"]["share"] == pytest.approx(0.25)
        assert gas["stages"]["queue"]["share"] == pytest.approx(0.75)
        assert aggregate_spans(records, scenario="hvac")["spans"] == 0
        assert aggregate_spans([])["total_p99_seconds"] == 0.0


def test_export_appends_as_json_lines(tmp_path):
    """The export is plain JSONL — consumable by any log tooling."""
    path = tmp_path / "spans.jsonl"
    tracer = Tracer(TraceConfig(sample_every=1, export_path=str(path)))
    _finish(tracer, "plant", 0, {"decode": 0.001})
    tracer.flush()
    line = path.read_text().strip()
    assert json.loads(line)["stream"] == "plant"
    tracer.close()
