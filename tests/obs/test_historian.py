"""Verdict-historian tests: round-trip, rotation, queries, crash safety."""

from __future__ import annotations

import math

import pytest

from repro.obs.historian import Historian, HistorianError, HistorianRecord
from repro.obs.metrics import MetricsRegistry


def _fill(historian: Historian, n: int, stream="plant-1", scenario="gas"):
    for seq in range(n):
        historian.append(
            stream, scenario, 1, seq, seq % 3, seq % 2 == 0,
            float(seq), wall_time=100.0 + seq,
        )


class TestRoundTrip:
    def test_append_flush_query(self, tmp_path):
        with Historian(tmp_path / "h") as historian:
            historian.append(
                "plant-1", "gas_pipeline", 3, 17, 2, True, 12.5,
                wall_time=1000.0,
            )
            historian.flush()
            records = historian.query()
        assert records == [
            HistorianRecord(
                stream_key="plant-1", scenario="gas_pipeline", version=3,
                seq=17, level=2, verdict=True, process_value=12.5,
                wall_time=1000.0,
            )
        ]

    def test_none_fields_round_trip(self, tmp_path):
        with Historian(tmp_path / "h") as historian:
            historian.append("k", None, None, 0, 0, False, None)
            historian.flush()
            record = historian.query()[0]
        assert record.scenario is None
        assert record.version is None
        assert math.isnan(record.process_value)
        assert record.to_dict()["process_value"] is None
        assert record.wall_time > 0  # defaulted to time.time()

    def test_order_is_append_order(self, tmp_path):
        with Historian(tmp_path / "h") as historian:
            _fill(historian, 50)
            historian.flush()
            assert [r.seq for r in historian.query()] == list(range(50))

    def test_append_after_close_raises(self, tmp_path):
        historian = Historian(tmp_path / "h")
        historian.close()
        with pytest.raises(HistorianError, match="closed"):
            historian.append("k", None, None, 0, 0, False, None)


class TestSegments:
    def test_rotation_by_record_count(self, tmp_path):
        with Historian(tmp_path / "h", segment_records=10) as historian:
            _fill(historian, 35)
            historian.flush()
            stats = historian.stats()
            assert stats["segments"] == 4
            assert stats["appended"] == 35
            assert len(historian.query()) == 35

    def test_retention_unlinks_oldest(self, tmp_path):
        with Historian(
            tmp_path / "h", segment_records=10, max_segments=2
        ) as historian:
            _fill(historian, 40)
            historian.flush()
            stats = historian.stats()
            records = historian.query()
        assert stats["segments"] == 2
        # Only the newest segments' records remain, still in order.
        assert [r.seq for r in records] == list(range(20, 40))

    def test_resume_continues_in_fresh_segment(self, tmp_path):
        root = tmp_path / "h"
        with Historian(root) as historian:
            _fill(historian, 5)
        with Historian(root) as resumed:
            _fill(resumed, 5, stream="plant-2")
            resumed.flush()
            records = resumed.query()
            stats = resumed.stats()
        assert stats["segments"] == 2  # old segment untouched, new one added
        assert [r.stream_key for r in records] == ["plant-1"] * 5 + [
            "plant-2"
        ] * 5

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        root = tmp_path / "h"
        with Historian(root) as historian:
            _fill(historian, 10)
        segment = next(root.glob("seg-*.hist"))
        raw = segment.read_bytes()
        segment.write_bytes(raw[: len(raw) - 7])  # crash mid-record
        with Historian(root) as resumed:
            records = resumed.query()
        assert [r.seq for r in records] == list(range(9))

    def test_validates_construction_parameters(self, tmp_path):
        with pytest.raises(HistorianError, match="segment_records"):
            Historian(tmp_path / "a", segment_records=0)
        with pytest.raises(HistorianError, match="buffer_records"):
            Historian(tmp_path / "b", buffer_records=0)
        with pytest.raises(HistorianError, match="max_segments"):
            Historian(tmp_path / "c", max_segments=-1)


class TestQuery:
    @pytest.fixture()
    def historian(self, tmp_path):
        with Historian(tmp_path / "h") as historian:
            _fill(historian, 20, stream="plant-1", scenario="gas")
            _fill(historian, 10, stream="plant-2", scenario="water")
            historian.flush()
            yield historian

    def test_filter_by_stream(self, historian):
        records = historian.query(stream_key="plant-2")
        assert len(records) == 10
        assert all(r.stream_key == "plant-2" for r in records)

    def test_filter_by_scenario(self, historian):
        assert len(historian.query(scenario="gas")) == 20

    def test_time_range_is_inclusive(self, historian):
        records = historian.query(
            stream_key="plant-1", since=105.0, until=107.0
        )
        assert [r.seq for r in records] == [5, 6, 7]

    def test_limit_keeps_newest(self, historian):
        records = historian.query(stream_key="plant-1", limit=3)
        assert [r.seq for r in records] == [17, 18, 19]

    def test_limit_must_be_positive(self, historian):
        with pytest.raises(HistorianError, match="limit"):
            historian.query(limit=0)


class TestMetricsIntegration:
    def test_appends_feed_the_registry(self, tmp_path):
        registry = MetricsRegistry()
        with Historian(
            tmp_path / "h", segment_records=5, metrics=registry
        ) as historian:
            _fill(historian, 12)
            historian.flush()
        snap = registry.snapshot()
        assert snap["historian_records_total"]["samples"][0]["value"] == 12
        assert (
            snap["historian_segment_rotations_total"]["samples"][0]["value"]
            == 3
        )
