"""Packaging metadata: the ``repro`` console script must stay wired.

The CLI installs as a command (``pip install .`` → ``repro ...``); these
tests pin the entry point declared in ``pyproject.toml`` (and the
legacy ``setup.py`` shim) to a callable that actually exists, so a
refactor cannot silently break the installed command.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def load_pyproject() -> dict:
    # tomllib is stdlib from 3.11; on 3.10 the pyproject-parsing checks
    # skip (the wiring they pin is version-independent and still covered
    # by the other legs of the CI python matrix).
    tomllib = pytest.importorskip("tomllib")
    return tomllib.loads((REPO / "pyproject.toml").read_text())


def test_console_script_points_at_the_cli():
    scripts = load_pyproject()["project"]["scripts"]
    assert scripts["repro"] == "repro.cli:main"


def test_console_script_target_resolves():
    module_name, _, attribute = "repro.cli:main".partition(":")
    module = __import__(module_name, fromlist=[attribute])
    assert callable(getattr(module, attribute))


def test_version_comes_from_the_package():
    import repro

    pyproject = load_pyproject()
    assert "version" in pyproject["project"]["dynamic"]
    attr = pyproject["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    assert attr == "repro.__version__"
    assert isinstance(repro.__version__, str) and repro.__version__


def test_package_discovery_covers_src_layout():
    pyproject = load_pyproject()
    assert pyproject["tool"]["setuptools"]["package-dir"][""] == "src"
    assert pyproject["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]


def test_legacy_setup_shim_repeats_the_entry_point():
    """The --no-use-pep517 path must install the same command."""
    tree = ast.parse((REPO / "setup.py").read_text())
    calls = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "setup"
    ]
    assert len(calls) == 1
    keywords = {kw.arg: kw.value for kw in calls[0].keywords}
    entry_points = ast.literal_eval(keywords["entry_points"])
    assert entry_points["console_scripts"] == ["repro = repro.cli:main"]
