"""End-to-end integration tests across all subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CombinedDetector,
    DetectorConfig,
    DatasetConfig,
    TimeSeriesDetectorConfig,
    evaluate_detection,
    generate_dataset,
)
from repro.ics import read_arff, write_arff
from repro.ics.dataset import split_into_fragments
from repro.nn.serialization import load_classifier, save_classifier


@pytest.fixture(scope="module")
def small_run():
    dataset = generate_dataset(DatasetConfig(num_cycles=900), seed=17)
    config = DetectorConfig(
        timeseries=TimeSeriesDetectorConfig(hidden_sizes=(24,), epochs=6)
    )
    detector, artifacts = CombinedDetector.train(
        dataset.train_fragments, dataset.validation_fragments, config, rng=17
    )
    return dataset, detector, artifacts


class TestFullPipeline:
    def test_detection_beats_chance(self, small_run):
        dataset, detector, _ = small_run
        result = detector.detect(dataset.test_packages)
        labels = np.array([p.label for p in dataset.test_packages])
        metrics = evaluate_detection(labels, result.is_anomaly)
        assert metrics.recall > metrics.false_positive_rate
        assert metrics.recall > 0.5

    def test_protocol_attacks_fully_caught(self, small_run):
        """MFCI / Recon change protocol fields — signatures must catch them."""
        dataset, detector, _ = small_run
        result = detector.detect(dataset.test_packages)
        labels = np.array([p.label for p in dataset.test_packages])
        for attack_id in (5, 7):  # MFCI, Recon
            mask = labels == attack_id
            if mask.any():
                assert result.is_anomaly[mask].mean() > 0.95

    def test_deterministic_end_to_end(self):
        outputs = []
        for _ in range(2):
            dataset = generate_dataset(DatasetConfig(num_cycles=300), seed=23)
            config = DetectorConfig(
                timeseries=TimeSeriesDetectorConfig(hidden_sizes=(12,), epochs=2)
            )
            detector, _ = CombinedDetector.train(
                dataset.train_fragments,
                dataset.validation_fragments,
                config,
                rng=23,
            )
            outputs.append(detector.detect(dataset.test_packages[:200]).is_anomaly)
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_arff_roundtrip_preserves_detection(self, small_run, tmp_path):
        """A capture archived to ARFF yields the same verdicts on reload."""
        dataset, detector, _ = small_run
        packages = dataset.test_packages[:300]
        path = tmp_path / "capture.arff"
        write_arff(packages, path)
        restored = read_arff(path)
        original = detector.detect(packages)
        reloaded = detector.detect(restored)
        np.testing.assert_array_equal(original.is_anomaly, reloaded.is_anomaly)

    def test_lstm_weights_roundtrip(self, small_run, tmp_path):
        dataset, detector, _ = small_run
        path = tmp_path / "lstm.npz"
        save_classifier(detector.timeseries.model, path)
        restored = load_classifier(path)
        x = np.zeros((5, detector.timeseries.encoder.input_size))
        np.testing.assert_array_equal(
            detector.timeseries.model.predict_proba(x), restored.predict_proba(x)
        )


class TestFailureInjection:
    def test_handles_all_missing_package(self, small_run):
        """A package with every optional field absent must not crash."""
        dataset, detector, _ = small_run
        package = dataset.test_packages[0].replace(
            setpoint=None,
            gain=None,
            reset_rate=None,
            deadband=None,
            cycle_time=None,
            rate=None,
            system_mode=None,
            control_scheme=None,
            pump=None,
            solenoid=None,
            pressure_measurement=None,
        )
        monitor = detector.stream()
        verdict, level = monitor.observe(package)
        assert isinstance(verdict, bool)

    def test_handles_extreme_values(self, small_run):
        dataset, detector, _ = small_run
        package = dataset.test_packages[0].replace(
            pressure_measurement=1e9, crc_rate=1e9, setpoint=-1e9
        )
        result = detector.detect([package] + dataset.test_packages[:10])
        assert len(result) == 11

    def test_detect_empty_stream(self, small_run):
        _, detector, _ = small_run
        result = detector.detect([])
        assert len(result) == 0

    def test_fragments_protocol_matches_paper(self):
        """Anomaly removal cuts streams; fragments < 10 are dropped."""
        dataset = generate_dataset(DatasetConfig(num_cycles=500), seed=29)
        train_end = int(len(dataset.all_packages) * 0.6)
        rebuilt = split_into_fragments(dataset.all_packages[:train_end], 10)
        assert [len(f) for f in rebuilt] == [len(f) for f in dataset.train_fragments]
