"""Shared test configuration.

The tier-1 suite must never read pipeline-cache entries written by a
previous run of possibly different code — a stale entry would make the
suite validate old behaviour.  Benchmarks (which *want* cross-process
sharing of one trained framework) keep the real cache directory via
their own conftest; tests get a throwaway one per session.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_pipeline_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("pipeline-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def scenario_detectors():
    """One micro trained framework per registered scenario.

    Model quality is irrelevant to registry/routing semantics, but the
    *signature databases* must be real — they are what identification
    and cross-scenario routing discriminate on — so each detector is
    trained on its own scenario's capture.
    """
    from repro.core.combined import CombinedDetector, DetectorConfig
    from repro.core.timeseries_detector import TimeSeriesDetectorConfig
    from repro.ics.dataset import generate_dataset
    from repro.scenarios import get_scenario, scenario_names

    config = DetectorConfig(
        timeseries=TimeSeriesDetectorConfig(hidden_sizes=(8,), epochs=1)
    )
    detectors = {}
    for name in scenario_names():
        dataset = generate_dataset(
            get_scenario(name).dataset_config(num_cycles=250), seed=3
        )
        detectors[name], _ = CombinedDetector.train(
            dataset.train_fragments,
            dataset.validation_fragments,
            config,
            rng=3,
        )
    return detectors


@pytest.fixture(scope="session")
def registry_root(tmp_path_factory, scenario_detectors):
    """A populated registry (v1 of every scenario) shared read-only.

    Tests that publish/promote must build their own registry root —
    this one is session-shared.
    """
    from repro.registry import ModelRegistry

    root = tmp_path_factory.mktemp("model-registry")
    registry = ModelRegistry(root)
    for name, detector in scenario_detectors.items():
        registry.publish(detector, name, meta={"profile": "micro", "seed": 3})
    return root


@pytest.fixture()
def registry(registry_root):
    """A fresh read view over the shared populated registry."""
    from repro.registry import ModelRegistry

    return ModelRegistry(registry_root)
