"""Shared test configuration.

The tier-1 suite must never read pipeline-cache entries written by a
previous run of possibly different code — a stale entry would make the
suite validate old behaviour.  Benchmarks (which *want* cross-process
sharing of one trained framework) keep the real cache directory via
their own conftest; tests get a throwaway one per session.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_pipeline_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("pipeline-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
