"""Tests for the disk-backed pipeline cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import pipeline
from repro.experiments.pipeline import (
    _cache_path,
    clear_pipeline_cache,
    run_pipeline,
)
from repro.experiments.profiles import get_profile
from repro.utils.artifact import ARTIFACT_VERSION


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point both cache layers at fresh state for every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_PIPELINE_CACHE", raising=False)
    clear_pipeline_cache()
    yield
    clear_pipeline_cache()


def test_disk_entry_written_and_hit():
    first = run_pipeline("ci")
    assert not first.from_cache
    path = _cache_path(get_profile("ci"))
    assert path.exists()

    # A fresh in-process layer (as a new process would have) hits disk.
    clear_pipeline_cache()
    second = run_pipeline("ci")
    assert second.from_cache
    assert second is not first
    np.testing.assert_array_equal(
        second.detection.is_anomaly, first.detection.is_anomaly
    )
    np.testing.assert_array_equal(second.detection.level, first.detection.level)
    assert second.metrics == first.metrics
    assert second.artifacts.chosen_k == first.artifacts.chosen_k
    assert (
        second.artifacts.top_k_validation_errors
        == first.artifacts.top_k_validation_errors
    )


def test_cached_detector_behaves_identically():
    first = run_pipeline("ci")
    clear_pipeline_cache()
    second = run_pipeline("ci")
    packages = second.dataset.test_packages[:60]
    np.testing.assert_array_equal(
        second.detector.detect(packages).is_anomaly,
        first.detector.detect(packages).is_anomaly,
    )


def test_memory_layer_returns_same_object():
    first = run_pipeline("ci")
    assert run_pipeline("ci") is first


def test_seeds_cached_separately():
    default = run_pipeline("ci")
    other = run_pipeline("ci", seed=123)
    assert other is not default
    assert _cache_path(get_profile("ci")) != _cache_path(
        get_profile("ci").with_seed(123)
    )


def test_version_bump_invalidates(monkeypatch):
    run_pipeline("ci")
    old_path = _cache_path(get_profile("ci"))
    assert old_path.exists()
    clear_pipeline_cache()
    monkeypatch.setattr(pipeline, "ARTIFACT_VERSION", ARTIFACT_VERSION + 1)
    # The stale entry's filename no longer matches: clean miss, retrain.
    assert _cache_path(get_profile("ci")) != old_path
    result = run_pipeline("ci")
    assert not result.from_cache


def test_corrupt_entry_retrains():
    run_pipeline("ci")
    path = _cache_path(get_profile("ci"))
    path.write_bytes(b"garbage")
    clear_pipeline_cache()
    result = run_pipeline("ci")
    assert not result.from_cache
    assert path.exists()  # rewritten with a good entry


def test_disk_layer_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_PIPELINE_CACHE", "0")
    run_pipeline("ci")
    assert not _cache_path(get_profile("ci")).exists()
