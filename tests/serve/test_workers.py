"""Multi-process shard backend: channel codec, worker lifecycle, and
the full gateway contract under ``worker_mode="process"``.

The acceptance bar does not move when compute leaves the event loop:
whatever the backend, verdicts must be **bit-identical** to offline
``detect()`` — through kills, checkpoint resumes (in either mode, from
either mode's checkpoint), hot-swaps and tiny-queue backpressure.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.registry import ModelRegistry
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient
from repro.serve.transport import encode_stream_data
from repro.serve.workers import (
    OP_SNAPSHOT,
    OP_STATS,
    SINGLE_LABEL,
    STATE_BLOB_KIND,
    WorkerError,
    WorkerHandle,
    decode_attach,
    decode_seen,
    decode_snapshot,
    decode_stats,
    decode_verdicts,
    encode_attach,
    encode_init,
    encode_observe,
    encode_seen,
    pool_label,
    pool_route,
)
from repro.utils.artifact import state_from_bytes, state_to_bytes


@pytest.fixture()
def offline(detector, capture):
    return detector.detect(capture)


def process_gateway(detector, **config):
    return start_in_thread(
        detector, GatewayConfig(worker_mode="process", **config)
    )


class TestChannelCodec:
    def test_pool_label_round_trips_single_and_routed(self):
        assert pool_label(None, None) == SINGLE_LABEL
        assert pool_route(SINGLE_LABEL) == (None, None)
        label = pool_label("gas_pipeline", 3)
        assert "@" in label  # can never collide with the single slot
        assert pool_route(label) == ("gas_pipeline", 3)

    def test_init_frame_requires_exactly_one_mode(self):
        pool = state_to_bytes({}, kind=STATE_BLOB_KIND)
        with pytest.raises(ValueError):
            encode_init(None, None, pool)
        with pytest.raises(ValueError):
            encode_init(b"blob", "/tmp/registry", pool)

    def test_verdict_row_count_mismatch_is_fatal(self):
        import struct

        # Two rows plus the per-group timing trailer (one group).
        resp = b"o" + bytes((1, 2, 0, 0)) + struct.pack(">H", 1)
        resp += struct.pack(">d", 0.25)
        verdicts, timings = decode_verdicts(resp, 2)
        assert verdicts == [(True, 2), (False, 0)]
        assert timings == [0.25]
        with pytest.raises(WorkerError, match="expected 3"):
            decode_verdicts(resp, 3)
        # A response truncated mid-trailer is fatal too.
        with pytest.raises(WorkerError, match="expected 2"):
            decode_verdicts(resp[:-4], 2)

    def test_engine_state_blob_round_trips(self, detector):
        engine = detector.engine(2)
        blob = state_to_bytes(
            {SINGLE_LABEL: engine.state_dict()}, kind=STATE_BLOB_KIND
        )
        restored = state_from_bytes(blob, kind=STATE_BLOB_KIND)
        assert set(restored) == {SINGLE_LABEL}
        assert list(restored[SINGLE_LABEL]["stream_ids"]) == list(
            engine.stream_ids
        )
        with pytest.raises(Exception, match="state blob"):
            state_from_bytes(blob, kind="something-else")


class TestWorkerHandle:
    def test_worker_serves_full_op_cycle(self, detector, capture):
        """One spawned worker exercises the whole opcode surface, and
        its verdicts match an identically-driven in-process engine."""
        handle = WorkerHandle(0)
        try:
            # Ops before INIT are an error response, not a dead worker.
            with pytest.raises(WorkerError, match="before INIT"):
                handle.call_sync(encode_attach(SINGLE_LABEL))

            assert (
                handle.call_sync(
                    encode_init(
                        state_to_bytes(
                            detector.state_dict(), kind=STATE_BLOB_KIND
                        ),
                        None,
                        state_to_bytes({}, kind=STATE_BLOB_KIND),
                    )
                )
                == b"i"
            )
            sid = decode_attach(handle.call_sync(encode_attach(SINGLE_LABEL)))

            reference = detector.engine(0)
            ref_sid = reference.attach()
            for package in capture[:8]:
                wire = encode_observe(
                    [(SINGLE_LABEL, [(sid, encode_stream_data(package, 0))])]
                )
                (verdict,), timings = decode_verdicts(handle.call_sync(wire), 1)
                expected, levels = reference.observe_batch({ref_sid: package})
                assert verdict == (bool(expected[0]), int(levels[0]))
                assert len(timings) == 1 and timings[0] >= 0.0

            seen = decode_seen(handle.call_sync(encode_seen(SINGLE_LABEL, sid)))
            assert seen == 8

            stats = decode_stats(handle.call_sync(OP_STATS))
            assert stats[SINGLE_LABEL]["streams"] == {str(sid): 8}
            assert stats[SINGLE_LABEL]["stats"]["packages"] == 8

            snapshot = decode_snapshot(handle.call_sync(OP_SNAPSHOT))
            assert set(snapshot) == {SINGLE_LABEL}
            assert list(snapshot[SINGLE_LABEL]["stream_ids"]) == [sid]
        finally:
            handle.close()

    def test_killed_worker_fails_calls_not_hangs(self):
        handle = WorkerHandle(0)
        handle.kill()
        with pytest.raises(WorkerError):
            handle.call_sync(encode_attach(SINGLE_LABEL), timeout=30.0)


class TestProcessGateway:
    def test_process_mode_matches_thread_mode_and_offline(
        self, detector, capture, offline
    ):
        for shards in (1, 2):
            handle = process_gateway(detector, num_shards=shards)
            try:
                host, port = handle.address
                result = ReplayClient(host, port, stream_key="plant").replay(
                    capture
                )
                assert result.complete and result.start == 0
                assert np.array_equal(result.anomalies, offline.is_anomaly)
                assert np.array_equal(result.levels, offline.level)
                stats = handle.stats()
                assert stats["processed"] == len(capture)
                assert stats["routes"]["plant"]["packages"] == len(capture)
                # Engine counters come from the workers and must add up
                # exactly like the in-process backend's.
                assert (
                    sum(s.get("packages", 0) for s in stats["shards"])
                    == len(capture)
                )
                assert stats["transport"]["modbus"]["frames_decoded"] > 0
            finally:
                handle.stop()
            # stats() keeps answering after the workers are gone.
            assert handle.stats()["processed"] == len(capture)

    def test_concurrent_streams_shard_across_workers(self, detector, capture):
        num_clients = 3
        slices = [capture[i::num_clients] for i in range(num_clients)]
        expected = [detector.detect(s) for s in slices]
        handle = process_gateway(detector, num_shards=2)
        try:
            host, port = handle.address
            results: dict[int, object] = {}

            def run(i):
                client = ReplayClient(host, port, stream_key=f"plant-{i}")
                results[i] = client.replay(slices[i])

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(num_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            for i in range(num_clients):
                assert results[i].complete, f"client {i} incomplete"
                assert np.array_equal(
                    results[i].anomalies, expected[i].is_anomaly
                ), f"client {i} diverged from offline detection"
                assert np.array_equal(results[i].levels, expected[i].level)
            assert handle.stats()["processed"] == sum(len(s) for s in slices)
        finally:
            handle.stop()

    def test_kill_and_resume_is_bit_identical(
        self, detector, capture, offline, tmp_path
    ):
        """The thread-mode fail-over drill, re-run with worker
        processes: periodic checkpoints coordinate across workers and a
        hard kill resumes bit-identically."""
        checkpoint = tmp_path / "gateway.npz"
        first_handle = process_gateway(
            detector,
            num_shards=2,
            checkpoint_path=str(checkpoint),
            checkpoint_every=40,
        )
        host, port = first_handle.address
        prefix = 100
        first = ReplayClient(host, port, stream_key="plant").replay(
            capture[:prefix]
        )
        assert first.complete
        assert first_handle.stats()["checkpoints_written"] >= 1
        first_handle.stop(checkpoint=False)  # crash: periodic snapshot only

        gateway = DetectionGateway.from_checkpoint(
            str(checkpoint), GatewayConfig(worker_mode="process")
        )
        second_handle = start_in_thread(None, gateway=gateway)
        try:
            host, port = second_handle.address
            second = ReplayClient(host, port, stream_key="plant").replay(capture)
            assert second.complete
            resumed_at = second.start
            assert 0 < resumed_at <= prefix
            assert resumed_at % 40 == 0
            anomalies = np.concatenate(
                [first.anomalies[:resumed_at], second.anomalies]
            )
            levels = np.concatenate([first.levels[:resumed_at], second.levels])
            assert np.array_equal(anomalies, offline.is_anomaly)
            assert np.array_equal(levels, offline.level)
        finally:
            second_handle.stop()

    def test_checkpoints_interchange_between_worker_modes(
        self, detector, capture, offline, tmp_path
    ):
        """Per-worker snapshots merge into the *same* on-disk format the
        in-process backend writes: a checkpoint taken in either mode
        resumes in the other, bit for bit."""
        boundary = 60
        for first_mode, second_mode in (
            ("thread", "process"),
            ("process", "thread"),
        ):
            checkpoint = tmp_path / f"{first_mode}-to-{second_mode}.npz"
            handle = start_in_thread(
                detector,
                GatewayConfig(
                    num_shards=2,
                    worker_mode=first_mode,
                    checkpoint_path=str(checkpoint),
                ),
            )
            host, port = handle.address
            first = ReplayClient(host, port, stream_key="plant").replay(
                capture[:boundary]
            )
            assert first.complete
            handle.stop(checkpoint=True)

            gateway = DetectionGateway.from_checkpoint(
                str(checkpoint), GatewayConfig(worker_mode=second_mode)
            )
            handle2 = start_in_thread(None, gateway=gateway)
            try:
                host, port = handle2.address
                second = ReplayClient(host, port, stream_key="plant").replay(
                    capture
                )
                assert second.start == boundary  # nothing re-judged
                anomalies = np.concatenate([first.anomalies, second.anomalies])
                levels = np.concatenate([first.levels, second.levels])
                assert np.array_equal(anomalies, offline.is_anomaly), (
                    f"{first_mode} -> {second_mode} diverged"
                )
                assert np.array_equal(levels, offline.level)
            finally:
                handle2.stop()

    def test_backpressure_under_tiny_queue(self, detector, capture, offline):
        """Tiny shard queues with worker processes: overload suspends
        the reader, serves everything, loses nothing, deadlocks never."""
        handle = process_gateway(detector, max_pending=1)
        try:
            host, port = handle.address
            result = ReplayClient(
                host, port, stream_key="slow", window=64
            ).replay(capture)
            assert result.complete
            assert result.judged == len(capture)  # no silent loss
            assert np.array_equal(result.anomalies, offline.is_anomaly)
        finally:
            handle.stop()


class TestRoutedProcessGateway:
    def routed_process_gateway(self, registry, **config):
        gateway = DetectionGateway(
            config=GatewayConfig(worker_mode="process", **config),
            registry=registry,
        )
        return start_in_thread(None, gateway=gateway)

    def test_tagged_streams_route_per_scenario(
        self, registry, scenario_detectors
    ):
        from repro.ics.dataset import generate_stream

        captures = {
            name: generate_stream(name, 30, 11)
            for name in ("gas_pipeline", "water_tank")
        }
        handle = self.routed_process_gateway(registry, num_shards=2)
        try:
            host, port = handle.address
            results = {}
            for name, capture in captures.items():
                client = ReplayClient(
                    host, port, stream_key=f"site-{name}", scenario=name
                )
                results[name] = client.replay(capture)
            stats = handle.stats()
            for name, result in results.items():
                assert result.complete
                offline = scenario_detectors[name].detect(captures[name])
                assert np.array_equal(result.anomalies, offline.is_anomaly)
                assert np.array_equal(result.levels, offline.level)
                route = stats["routes"][f"site-{name}"]
                assert route["scenario"] == name
                assert route["packages"] == len(captures[name])
        finally:
            handle.stop()

    def test_hot_swap_drains_inside_workers_without_drops(
        self, tmp_path, scenario_detectors
    ):
        """Promote v2 while a replay is mid-flight through worker
        processes: zero packages dropped or re-judged, and the stitched
        stream is v1-offline before the boundary, v2-offline after."""
        from repro.core.combined import CombinedDetector, DetectorConfig
        from repro.core.timeseries_detector import TimeSeriesDetectorConfig
        from repro.ics.dataset import generate_dataset, generate_stream
        from repro.scenarios import get_scenario

        dataset = generate_dataset(
            get_scenario("gas_pipeline").dataset_config(num_cycles=250), seed=3
        )
        gas_v2, _ = CombinedDetector.train(
            dataset.train_fragments,
            dataset.validation_fragments,
            DetectorConfig(
                timeseries=TimeSeriesDetectorConfig(hidden_sizes=(8,), epochs=1)
            ),
            rng=5,
        )
        capture = generate_stream("gas_pipeline", 60, 13)
        own = ModelRegistry(tmp_path / "swap")
        v1 = scenario_detectors["gas_pipeline"]
        own.publish(v1, "gas_pipeline")
        handle = self.routed_process_gateway(own, max_pending=8)
        try:
            host, port = handle.address

            def promote_mid_flight():
                deadline = time.monotonic() + 20.0
                while handle.stats()["processed"] < len(capture) // 4:
                    if time.monotonic() > deadline:
                        return
                    time.sleep(0.002)
                own.publish(gas_v2, "gas_pipeline")  # activates v2

            publisher = threading.Thread(target=promote_mid_flight)
            publisher.start()
            result = ReplayClient(
                host, port, stream_key="plant", scenario="gas_pipeline", window=8
            ).replay(capture)
            publisher.join(30.0)

            assert result.complete
            assert result.judged == len(capture)  # zero dropped packages
            stats = handle.stats()
            assert stats["swaps_applied"] == 1
            boundary = stats["routes"]["plant"]["seq_base"]
            assert 0 < boundary < len(capture), "swap missed the live window"
            expected_head = v1.detect(capture[:boundary])
            expected_tail = gas_v2.detect(capture[boundary:])
            assert np.array_equal(
                result.anomalies,
                np.concatenate(
                    [expected_head.is_anomaly, expected_tail.is_anomaly]
                ),
            )
            assert np.array_equal(
                result.levels,
                np.concatenate([expected_head.level, expected_tail.level]),
            )
            assert stats["routes"]["plant"]["version"] == 2
        finally:
            handle.stop()

    def test_routed_checkpoint_resumes_in_process_mode(
        self, tmp_path, registry, scenario_detectors
    ):
        """Routed checkpoint round trip with worker processes on both
        sides: the route table, per-dialect transport counters and every
        engine's recurrent state survive the merge."""
        from repro.ics.dataset import generate_stream

        capture = generate_stream("gas_pipeline", 30, 11)
        checkpoint = tmp_path / "routed.npz"
        gateway = DetectionGateway(
            config=GatewayConfig(
                num_shards=2,
                worker_mode="process",
                checkpoint_path=str(checkpoint),
            ),
            registry=registry,
        )
        handle = start_in_thread(None, gateway=gateway)
        host, port = handle.address
        half = len(capture) // 2
        first = ReplayClient(
            host, port, stream_key="a", scenario="gas_pipeline"
        ).replay(capture[:half])
        assert first.complete
        frames_before = handle.stats()["transport"]["modbus"]["frames_decoded"]
        handle.stop(checkpoint=True)

        restored = DetectionGateway.from_checkpoint(
            str(checkpoint),
            GatewayConfig(worker_mode="process"),
            registry=registry,
        )
        handle2 = start_in_thread(None, gateway=restored)
        try:
            host, port = handle2.address
            assert (
                handle2.stats()["transport"]["modbus"]["frames_decoded"]
                == frames_before
            )
            second = ReplayClient(host, port, stream_key="a").replay(capture)
            assert second.start == half
            stitched = np.concatenate([first.anomalies, second.anomalies])
            offline = scenario_detectors["gas_pipeline"].detect(capture)
            assert np.array_equal(stitched, offline.is_anomaly)
            assert handle2.stats()["routes"]["a"]["scenario"] == "gas_pipeline"
        finally:
            handle2.stop()

    def test_process_mode_without_registry_root_is_rejected(
        self, registry, scenario_detectors
    ):
        """A router with no on-disk registry cannot ship routes to
        worker processes — that must fail at start, not mid-stream."""
        from repro.registry.router import ScenarioRouter

        router = ScenarioRouter(registry)
        router.registry.root = None  # simulate an in-memory-only router
        gateway = DetectionGateway(
            config=GatewayConfig(worker_mode="process"), router=router
        )
        with pytest.raises(Exception, match="registry-backed"):
            start_in_thread(None, gateway=gateway)
