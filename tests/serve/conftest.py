"""Shared serving-layer fixtures: one tiny trained framework per session.

Training quality is irrelevant to transport/gateway semantics (the
data path does identical work whatever the weights), so the detector
is micro-sized to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset


@pytest.fixture(scope="session")
def serve_dataset():
    return generate_dataset(DatasetConfig(num_cycles=250), seed=3)


@pytest.fixture(scope="session")
def detector(serve_dataset):
    detector, _ = CombinedDetector.train(
        serve_dataset.train_fragments,
        serve_dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=(8,), epochs=1)
        ),
        rng=3,
    )
    return detector


@pytest.fixture(scope="session")
def capture(serve_dataset):
    """A labelled test-stream slice with both attack and normal traffic."""
    return serve_dataset.test_packages[:150]
