"""Protocol adapters: framing, resync, sniffing and adversarial decode.

Every dialect must satisfy one conformance contract: lossless PDU
round-trips, byte-at-a-time and arbitrarily-chunked feeding, recovery
after line garbage, and — for the checksummed framings — rejection of
*every* single-bit corruption.  The suite is parametrized over all
registered adapters so a new dialect inherits the whole battery.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ics.features import FEATURE_NAMES, Package
from repro.serve.protocols import (
    DNP3,
    IEC104,
    MODBUS,
    PROTOCOL_NAMES,
    SNIFF_ORDER,
    ProtocolSniffer,
    crc16_dnp,
    get_adapter,
)
from repro.serve.transport import (
    KIND_DATA,
    KIND_OPEN,
    KIND_VERDICT,
    TransportError,
    decode_stream_data,
    encode_stream_data,
)

ALL = [get_adapter(name) for name in PROTOCOL_NAMES]
FRAMED = [IEC104, DNP3]  # dialects with checksummed link layers


def make_package(**overrides) -> Package:
    base = dict(
        address=13,
        crc_rate=0.002,
        function=3,
        length=29,
        setpoint=2.0,
        gain=0.4,
        reset_rate=0.02,
        deadband=0.5,
        cycle_time=1.0,
        rate=0.2,
        system_mode=2,
        control_scheme=0,
        pump=1,
        solenoid=0,
        pressure_measurement=2.31,
        command_response=0,
        time=1.5,
        label=0,
    )
    base.update(overrides)
    return Package(**base)


class TestCrc16Dnp:
    def test_standard_check_value(self):
        assert crc16_dnp(b"123456789") == 0xEA82

    def test_detects_any_single_bit_flip(self):
        data = bytearray(b"\x00\x01\x02\x03hello")
        reference = crc16_dnp(bytes(data))
        for i in range(len(data) * 8):
            flipped = bytearray(data)
            flipped[i // 8] ^= 1 << (i % 8)
            assert crc16_dnp(bytes(flipped)) != reference


class TestRegistryLookup:
    def test_known_names(self):
        assert PROTOCOL_NAMES == ("dnp3", "iec104", "modbus")
        assert set(SNIFF_ORDER) == set(PROTOCOL_NAMES)
        for name in PROTOCOL_NAMES:
            assert get_adapter(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            get_adapter("profibus")


@pytest.mark.parametrize("adapter", ALL, ids=lambda a: a.name)
class TestAdapterConformance:
    def test_control_pdu_roundtrips(self, adapter):
        decoder = adapter.decoder()
        wire = (
            adapter.frame_open("site-9", "water_tank")
            + adapter.frame_open_ack(7, 1234)
            + adapter.frame_verdict(42, True, 2, unit_id=13)
            + adapter.frame_error("boom")
        )
        frames = decoder.feed(wire)
        assert len(frames) == 4
        key, scenario, protocol = adapter.decode_open(frames[0].pdu)
        assert (key, scenario) == ("site-9", "water_tank")
        # Non-Modbus streams self-describe their dialect in the OPEN.
        assert protocol == (None if adapter is MODBUS else adapter.name)
        assert adapter.decode_open_ack(frames[1].pdu) == (7, 1234)
        assert adapter.decode_verdict(frames[2].pdu) == (42, True, 2)
        assert adapter.decode_error(frames[3].pdu) == "boom"
        assert decoder.bytes_discarded == 0
        assert decoder.resyncs == 0

    def test_data_roundtrip_preserves_package_and_aux(self, adapter):
        package = make_package(aux=(19.25, 0.5))
        wire = adapter.frame_data(package, 77)
        frames = adapter.decoder().feed(wire)
        assert len(frames) == 1
        assert frames[0].kind == KIND_DATA
        data = adapter.decode_data(frames[0].pdu)
        assert data.seq == 77
        assert data.package.to_row() == package.to_row()
        assert data.package.aux == (19.25, 0.5)

    def test_byte_at_a_time_feeding(self, adapter):
        wire = b"".join(
            adapter.frame_verdict(i, bool(i % 2), i % 3) for i in range(5)
        )
        decoder = adapter.decoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i : i + 1]))
        assert [adapter.decode_verdict(f.pdu)[0] for f in frames] == list(range(5))
        assert decoder.bytes_discarded == 0

    @given(cuts=st.lists(st.integers(0, 500), min_size=0, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_any_chunking_yields_same_frames(self, adapter, cuts):
        wire = b"".join(adapter.frame_verdict(i, True, 1) for i in range(3))
        decoder = adapter.decoder()
        frames = []
        position = 0
        for cut in sorted(c % (len(wire) + 1) for c in cuts):
            frames.extend(decoder.feed(wire[position:cut]))
            position = cut
        frames.extend(decoder.feed(wire[position:]))
        assert [adapter.decode_verdict(f.pdu)[0] for f in frames] == [0, 1, 2]
        assert decoder.bytes_discarded == 0

    def test_resync_after_garbage_and_counter_semantics(self, adapter):
        good = adapter.frame_open("k")
        noise = b"\xff" * 23
        decoder = adapter.decoder()
        frames = decoder.feed(noise + good + noise + good)
        assert len(frames) == 2
        assert all(adapter.decode_open(f.pdu)[0] == "k" for f in frames)
        assert decoder.bytes_discarded == len(noise) * 2
        # Two separate noise *runs* = exactly two sync-loss events.
        assert decoder.resyncs == 2

    def test_every_prefix_truncation_then_completion(self, adapter):
        # Cutting a frame at every possible byte boundary must never
        # desynchronize the decoder: the remainder completes the frame.
        whole = adapter.frame_verdict(99, True, 1)
        for cut in range(len(whole) + 1):
            decoder = adapter.decoder()
            frames = decoder.feed(whole[:cut])
            frames += decoder.feed(whole[cut:])
            assert len(frames) == 1, f"cut at {cut}"
            assert adapter.decode_verdict(frames[0].pdu) == (99, True, 1)
            assert decoder.bytes_discarded == 0

    def test_sniffer_locks_onto_own_frames(self, adapter):
        sniffer = ProtocolSniffer()
        assert sniffer.feed(adapter.frame_open("site")) is adapter

    def test_sniffer_sheds_leading_garbage(self, adapter):
        sniffer = ProtocolSniffer()
        wire = b"\xff\x00\xfe" + adapter.frame_open("site")
        matched = sniffer.feed(wire)
        assert matched is adapter
        assert sniffer.bytes_discarded == 3
        # The locked-on bytes are preserved for the dialect decoder.
        frames = adapter.decoder().feed(sniffer.pending)
        assert adapter.decode_open(frames[0].pdu)[0] == "site"


@pytest.mark.parametrize("adapter", FRAMED, ids=lambda a: a.name)
class TestChecksummedFraming:
    def test_exhaustive_single_bit_flip_never_decodes(self, adapter):
        # Flip every bit of a framed DATA record, one at a time: the
        # decoder must never hand a corrupted frame upstream as valid.
        package = make_package(aux=(20.0,))
        whole = bytearray(adapter.frame_data(package, 5))
        reference = adapter.decoder().feed(bytes(whole))[0].pdu
        for i in range(len(whole) * 8):
            mutated = bytearray(whole)
            mutated[i // 8] ^= 1 << (i % 8)
            decoder = adapter.decoder()
            for frame in decoder.feed(bytes(mutated)):
                # A frame surviving a flip may only be the original if
                # the flip landed outside what the framing protects —
                # which for these dialects is nothing.
                assert frame.pdu != reference, f"bit {i} undetected"

    def test_flipped_frame_does_not_poison_the_stream(self, adapter):
        good = adapter.frame_verdict(3, False, 0)
        corrupted = bytearray(adapter.frame_verdict(2, True, 1))
        corrupted[-3] ^= 0x10  # damage the body/trailer
        decoder = adapter.decoder()
        frames = decoder.feed(bytes(corrupted) + good)
        assert [adapter.decode_verdict(f.pdu) for f in frames] == [(3, False, 0)]
        assert decoder.resyncs >= 1

    def test_oversized_pdu_refused_at_framing(self, adapter):
        with pytest.raises(TransportError):
            adapter._frame(b"\x41" + bytes(5000))
        with pytest.raises(TransportError):
            adapter._frame(b"")


class TestStreamDataRecord:
    def test_roundtrip_without_aux(self):
        package = make_package()
        seq, decoded = (lambda d: (d.seq, d.package))(
            decode_stream_data(encode_stream_data(package, 9))
        )
        assert seq == 9
        assert decoded.to_row() == package.to_row()
        assert decoded.aux == ()

    def test_aux_is_exact_float64(self):
        package = make_package(aux=(0.1, 1e-9, 12345.6789))
        decoded = decode_stream_data(encode_stream_data(package, 0)).package
        assert decoded.aux == (0.1, 1e-9, 12345.6789)

    def test_rejects_trailing_or_missing_bytes(self):
        pdu = encode_stream_data(make_package(aux=(1.0,)), 4)
        with pytest.raises(TransportError):
            decode_stream_data(pdu + b"\x00")
        with pytest.raises(TransportError):
            decode_stream_data(pdu[:-1])

    def test_rejects_wrong_kind_and_nonfinite_aux(self):
        with pytest.raises(TransportError):
            decode_stream_data(b"\x41nope")
        with pytest.raises(TransportError):
            encode_stream_data(make_package(aux=(float("nan"),)), 0)
        with pytest.raises(TransportError):
            encode_stream_data(make_package(aux=tuple([1.0] * 33)), 0)


class TestSniffDisambiguation:
    def test_modbus_txid_0x0564_is_not_dnp3(self):
        # An MBAP header whose transaction id equals the DNP3 magic must
        # still sniff as Modbus (the DNP3 parse reads MBAP's zero
        # protocol-id field as an invalid length).
        from repro.serve.transport import encode_open, wrap_pdu

        wire = wrap_pdu(encode_open("k"), transaction_id=0x0564)
        assert ProtocolSniffer().feed(wire) is MODBUS

    def test_sniffer_respects_protocol_allowlist(self):
        wire = DNP3.frame_open("k")
        sniffer = ProtocolSniffer(protocols=("modbus", "iec104"))
        # DNP3 frames are just garbage to a gateway not accepting dnp3.
        assert sniffer.feed(wire) is None or sniffer.bytes_discarded > 0

    def test_sniffer_rejects_unknown_protocol_names(self):
        with pytest.raises(KeyError, match="unknown protocols"):
            ProtocolSniffer(protocols=("modbus", "profibus"))

    def test_iec104_header_is_not_modbus(self):
        wire = IEC104.frame_open("k")
        assert MODBUS.sniff(wire) in (False, None)
        assert ProtocolSniffer().feed(wire) is IEC104

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_random_garbage_never_crashes_the_sniffer(self, junk):
        sniffer = ProtocolSniffer()
        adapter = sniffer.feed(junk)
        # Whatever the junk, a real frame afterwards still locks on.
        if adapter is None:
            matched = sniffer.feed(DNP3.frame_open("k") * 2)
            assert matched is not None


class TestModbusBitIdentity:
    """The reference adapter must equal the legacy hardwired framing."""

    def test_open_matches_legacy_wire_format(self):
        from repro.serve.transport import encode_open, wrap_pdu

        assert MODBUS.frame_open("site-7") == wrap_pdu(
            encode_open("site-7"), transaction_id=1
        )
        assert MODBUS.frame_open("s", "water_tank") == wrap_pdu(
            encode_open("s", "water_tank"), transaction_id=1
        )

    def test_data_matches_legacy_wire_format(self):
        from repro.serve.transport import encode_data, wrap_pdu

        package = make_package()
        for seq in (0, 1, 0xFFFE, 0xFFFF, 123456):
            assert MODBUS.frame_data(package, seq) == wrap_pdu(
                encode_data(package, seq),
                transaction_id=(seq % 0xFFFF) + 1,
                unit_id=package.address & 0xFF,
            )

    def test_verdict_and_error_match_legacy_wire_format(self):
        from repro.serve.transport import encode_error, encode_verdict, wrap_pdu

        assert MODBUS.frame_verdict(9, True, 2, unit_id=13) == wrap_pdu(
            encode_verdict(9, True, 2), transaction_id=10, unit_id=13
        )
        assert MODBUS.frame_error("bad") == wrap_pdu(
            encode_error("bad"), transaction_id=0
        )
