"""Cross-protocol conformance: every dialect, one serving contract.

Whatever wire dialect a site speaks, the gateway's verdict stream must
be **bit-identical** to offline ``detect()`` on the same capture — with
line noise on the link, across a kill-and-resume fail-over, and in a
mixed-protocol fleet.  The suite is parametrized over every registered
adapter so a new dialect inherits the whole contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ics.dataset import generate_stream
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.protocols import PROTOCOL_NAMES
from repro.serve.replay import ReplayClient


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
class TestProtocolConformance:
    def test_gateway_verdicts_match_offline_detect(
        self, protocol, detector, capture
    ):
        handle = start_in_thread(detector, GatewayConfig(num_shards=2))
        try:
            host, port = handle.address
            result = ReplayClient(
                host, port, stream_key="site", protocol=protocol
            ).replay(capture)
            stats = handle.stats()
        finally:
            handle.stop()
        assert result.complete
        offline = detector.detect(capture)
        assert np.array_equal(result.anomalies, offline.is_anomaly)
        assert np.array_equal(
            np.where(offline.is_anomaly, offline.level, 0),
            np.where(result.anomalies, result.levels, 0),
        )
        assert stats["routes"]["site"]["protocol"] == protocol
        assert stats["transport"][protocol]["connections"] == 1
        assert stats["transport"][protocol]["frames_decoded"] == len(capture) + 1

    def test_survives_line_noise_between_frames(
        self, protocol, detector, capture
    ):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            result = ReplayClient(
                host,
                port,
                stream_key="noisy",
                protocol=protocol,
                noise_every=5,
                noise_bytes=11,
            ).replay(capture[:60])
            stats = handle.stats()
        finally:
            handle.stop()
        assert result.complete
        offline = detector.detect(capture[:60])
        assert np.array_equal(result.anomalies, offline.is_anomaly)
        counters = stats["transport"][protocol]
        assert counters["bytes_discarded"] > 0
        assert counters["resyncs"] > 0
        assert stats["bytes_discarded"] == counters["bytes_discarded"]


class TestFailoverEveryDialect:
    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_kill_and_resume(self, protocol, tmp_path, detector, capture):
        # The fail-over contract must not be a Modbus-only property:
        # crash a gateway mid-stream on each dialect, restore from the
        # periodic checkpoint, finish the replay, and require the
        # stitched verdicts to equal one uninterrupted offline run —
        # with the per-dialect transport counters surviving too.
        checkpoint = tmp_path / "gw.npz"
        handle = start_in_thread(
            detector,
            GatewayConfig(
                num_shards=2,
                checkpoint_path=str(checkpoint),
                checkpoint_every=20,
            ),
        )
        host, port = handle.address
        half = len(capture) // 2
        first = ReplayClient(
            host, port, stream_key="plant", protocol=protocol
        ).replay(capture[:half])
        assert first.complete
        pre_crash = handle.stats()["transport"][protocol]
        handle.stop(checkpoint=True)

        restored = DetectionGateway.from_checkpoint(str(checkpoint), detector=detector)
        # The per-stream dialect and its transport counters survive the
        # crash in checkpoint meta — restored counts match pre-crash.
        assert restored.stats()["routes"]["plant"]["protocol"] == protocol
        assert restored.stats()["transport"][protocol] == pre_crash
        assert pre_crash["connections"] == 1
        assert pre_crash["frames_decoded"] == half + 1
        handle2 = start_in_thread(None, gateway=restored)
        try:
            host, port = handle2.address
            second = ReplayClient(
                host, port, stream_key="plant", protocol=protocol
            ).replay(capture)
        finally:
            handle2.stop()
        assert second.start == half and second.complete
        stitched = np.concatenate([first.anomalies, second.anomalies])
        offline = detector.detect(capture)
        assert np.array_equal(stitched, offline.is_anomaly)

    def test_reconnect_may_switch_dialects(self, detector, capture):
        # Protocol is transport provenance, not identity: one stream
        # key may come back over a different dialect and still resume.
        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            half = len(capture) // 2
            first = ReplayClient(
                host, port, stream_key="k", protocol="iec104"
            ).replay(capture[:half])
            second = ReplayClient(
                host, port, stream_key="k", protocol="modbus"
            ).replay(capture)
            stats = handle.stats()
        finally:
            handle.stop()
        assert second.start == half
        assert stats["routes"]["k"]["protocol"] == "modbus"
        stitched = np.concatenate([first.anomalies, second.anomalies])
        assert np.array_equal(stitched, detector.detect(capture).is_anomaly)


class TestProtocolNegotiation:
    def test_gateway_restricted_to_modbus_ignores_dnp3(self, detector, capture):
        from repro.serve.replay import ReplayError

        handle = start_in_thread(
            detector, GatewayConfig(protocols=("modbus",))
        )
        try:
            host, port = handle.address
            with pytest.raises(ReplayError):
                ReplayClient(
                    host, port, stream_key="x", protocol="dnp3", timeout=0.5
                ).replay(capture[:10])
            # The same gateway still serves its allowed dialect.
            ok = ReplayClient(
                host, port, stream_key="y", protocol="modbus"
            ).replay(capture[:10])
        finally:
            handle.stop()
        assert ok.complete

    def test_open_protocol_tag_must_match_sniffed_dialect(
        self, detector, capture
    ):
        # A client declaring iec104 inside a Modbus-framed OPEN is
        # confused or spoofing; the gateway must refuse the session.
        import socket as socket_mod

        from repro.serve.protocols import MODBUS
        from repro.serve.transport import KIND_ERROR, encode_open, wrap_pdu

        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            with socket_mod.create_connection((host, port), 5.0) as sock:
                sock.settimeout(5.0)
                sock.sendall(
                    wrap_pdu(
                        encode_open("liar", protocol="iec104"), transaction_id=1
                    )
                )
                decoder = MODBUS.decoder()
                frames = []
                while not frames:
                    data = sock.recv(65536)
                    if not data:
                        break
                    frames.extend(decoder.feed(data))
        finally:
            handle.stop()
        assert frames and frames[0].kind == KIND_ERROR
        message = MODBUS.decode_error(frames[0].pdu)
        assert "iec104" in message and "modbus" in message


class TestTwoVariableScenario:
    """chlorination_dosing: the first RegisterMap consumer, end to end."""

    @pytest.fixture(scope="class")
    def chlorination_capture(self):
        return generate_stream("chlorination_dosing", 30, 11)

    def test_capture_carries_aux_flow_readings(self, chlorination_capture):
        from repro.ics.modbus import FunctionCode

        read_responses = [
            p
            for p in chlorination_capture
            if p.command_response == 0
            and p.function == FunctionCode.READ_HOLDING_REGISTERS
            and p.label == 0
        ]
        assert read_responses, "capture has no clean read responses"
        assert all(len(p.aux) == 1 for p in read_responses)
        flows = [p.aux[0] for p in read_responses]
        assert all(0.0 <= f <= 40.0 for f in flows)
        assert len(set(flows)) > 1  # the flow actually moves

    def test_serves_over_declared_iec104_dialect_bit_identically(
        self, scenario_detectors, chlorination_capture
    ):
        detector = scenario_detectors["chlorination_dosing"]
        handle = start_in_thread(detector, GatewayConfig(num_shards=2))
        try:
            host, port = handle.address
            result = ReplayClient(
                host, port, stream_key="dosing", protocol="iec104"
            ).replay(chlorination_capture)
            stats = handle.stats()
        finally:
            handle.stop()
        assert result.complete
        offline = detector.detect(chlorination_capture)
        assert np.array_equal(result.anomalies, offline.is_anomaly)
        assert stats["routes"]["dosing"]["protocol"] == "iec104"

    def test_auto_identified_against_full_registry(
        self, registry, scenario_detectors, chlorination_capture
    ):
        # Untagged stream over the scenario's declared dialect: the
        # gateway must route it to the chlorination artifact (the
        # protocol narrows the candidates; the signature DB decides).
        gateway = DetectionGateway(
            config=GatewayConfig(num_shards=2), registry=registry
        )
        handle = start_in_thread(None, gateway=gateway)
        try:
            host, port = handle.address
            result = ReplayClient(
                host, port, stream_key="mystery", protocol="iec104"
            ).replay(chlorination_capture)
            stats = handle.stats()
        finally:
            handle.stop()
        assert result.complete
        route = stats["routes"]["mystery"]
        assert route["scenario"] == "chlorination_dosing"
        assert route["protocol"] == "iec104"
        offline = scenario_detectors["chlorination_dosing"].detect(
            chlorination_capture
        )
        assert np.array_equal(result.anomalies, offline.is_anomaly)


class TestMixedProtocolFleet:
    def test_heterogeneous_fleet_verifies_bit_identity_per_site(self, registry):
        from repro.serve.fleet import FleetConfig, FleetRunner

        config = FleetConfig(
            num_sites=6,
            scenarios=("gas_pipeline", "water_tank", "chlorination_dosing"),
            cycles_per_site=12,
            num_shards=2,
            verify_offline=True,
            protocols=("modbus", "iec104", "dnp3"),
        )
        result = FleetRunner(config=config, registry=registry).run()
        assert result.all_complete
        assert result.all_match_offline
        # Every dialect was really on the wire, and the gateway's audit
        # trail agrees with what each site spoke.
        assert set(result.gateway_stats["transport"]) == set(PROTOCOL_NAMES)
        for site in result.sites:
            assert site.route_protocol == site.spec.wire_protocol()

    def test_scenario_declared_dialects_apply_without_config(self, registry):
        from repro.serve.fleet import FleetConfig, FleetRunner

        config = FleetConfig(
            num_sites=2,
            scenarios=("gas_pipeline", "chlorination_dosing"),
            cycles_per_site=12,
            verify_offline=True,
        )
        result = FleetRunner(config=config, registry=registry).run()
        assert result.all_match_offline
        by_scenario = {s.spec.scenario: s for s in result.sites}
        assert by_scenario["gas_pipeline"].route_protocol == "modbus"
        assert by_scenario["chlorination_dosing"].route_protocol == "iec104"
