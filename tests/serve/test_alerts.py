"""Tests for severity classification, dedup/rate-limiting and sinks."""

from __future__ import annotations

import json

import pytest

from repro.core.stream_engine import LEVEL_PACKAGE, LEVEL_TIMESERIES
from repro.serve.alerts import (
    AlertConfig,
    AlertPipeline,
    JsonlSink,
    Severity,
    stdout_sink,
)

from tests.serve.test_transport import make_package


def submit(pipeline, t, level, stream="s", seq=0):
    return pipeline.submit(stream, seq, make_package(time=t), level)


class TestSeverity:
    def test_bloom_level_outranks_lstm_level(self):
        pipeline = AlertPipeline()
        bloom = submit(pipeline, 0.0, LEVEL_PACKAGE)
        lstm = submit(pipeline, 100.0, LEVEL_TIMESERIES)
        assert bloom.severity == Severity.HIGH
        assert lstm.severity == Severity.MEDIUM
        assert bloom.severity > lstm.severity

    def test_repeat_offender_escalates(self):
        config = AlertConfig(
            dedup_window=0.5, escalate_threshold=3, escalate_window=30.0
        )
        pipeline = AlertPipeline(config=config)
        first = submit(pipeline, 0.0, LEVEL_TIMESERIES)
        second = submit(pipeline, 1.0, LEVEL_TIMESERIES)
        third = submit(pipeline, 2.0, LEVEL_TIMESERIES)
        assert not first.escalated and not second.escalated
        assert third.escalated
        assert third.severity == Severity.HIGH

    def test_escalation_saturates_at_critical(self):
        assert Severity.CRITICAL.escalate() == Severity.CRITICAL

    def test_escalation_window_expires(self):
        config = AlertConfig(
            dedup_window=0.5, escalate_threshold=2, escalate_window=5.0
        )
        pipeline = AlertPipeline(config=config)
        submit(pipeline, 0.0, LEVEL_TIMESERIES)
        late = submit(pipeline, 100.0, LEVEL_TIMESERIES)
        assert not late.escalated


class TestDedupAndRateLimit:
    def test_duplicates_fold_into_next_emission(self):
        pipeline = AlertPipeline(config=AlertConfig(dedup_window=5.0))
        assert submit(pipeline, 0.0, LEVEL_PACKAGE) is not None
        assert submit(pipeline, 1.0, LEVEL_PACKAGE) is None
        assert submit(pipeline, 2.0, LEVEL_PACKAGE) is None
        later = submit(pipeline, 10.0, LEVEL_PACKAGE)
        assert later is not None
        assert later.repeats == 2
        stats = pipeline.stats()
        assert stats["emitted"] == 2
        assert stats["suppressed"] == 2

    def test_levels_dedup_independently(self):
        pipeline = AlertPipeline(config=AlertConfig(dedup_window=5.0))
        assert submit(pipeline, 0.0, LEVEL_PACKAGE) is not None
        assert submit(pipeline, 1.0, LEVEL_TIMESERIES) is not None

    def test_streams_dedup_independently(self):
        pipeline = AlertPipeline(config=AlertConfig(dedup_window=5.0))
        assert submit(pipeline, 0.0, LEVEL_PACKAGE, stream="a") is not None
        assert submit(pipeline, 1.0, LEVEL_PACKAGE, stream="b") is not None

    def test_rate_limit_caps_emissions_per_window(self):
        config = AlertConfig(
            dedup_window=0.0, rate_window=60.0, max_alerts_per_window=3
        )
        pipeline = AlertPipeline(config=config)
        emitted = [
            submit(pipeline, float(t), LEVEL_PACKAGE) is not None
            for t in range(10)
        ]
        assert sum(emitted) == 3
        fresh_window = submit(pipeline, 120.0, LEVEL_PACKAGE)
        assert fresh_window is not None

    def test_deterministic_on_stream_clock(self):
        """Identical inputs produce identical alert streams, run after run."""

        def run():
            collected = []
            pipeline = AlertPipeline(sinks=[collected.append])
            for t in range(20):
                submit(pipeline, float(t), LEVEL_PACKAGE if t % 3 else LEVEL_TIMESERIES, seq=t)
            return collected

        assert run() == run()


class TestSinks:
    def test_jsonl_sink_writes_one_object_per_alert(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        pipeline = AlertPipeline(sinks=[JsonlSink(path)])
        submit(pipeline, 0.0, LEVEL_PACKAGE, seq=5)
        submit(pipeline, 50.0, LEVEL_TIMESERIES, seq=9)
        pipeline.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["severity"] == "HIGH"
        assert lines[0]["level"] == "package"
        assert lines[1]["seq"] == 9

    def test_stdout_sink_prints(self, capsys):
        pipeline = AlertPipeline(sinks=[stdout_sink])
        submit(pipeline, 0.0, LEVEL_PACKAGE)
        assert "HIGH" in capsys.readouterr().out

    def test_broken_sink_never_blocks_the_others(self):
        collected = []

        def broken(alert):
            raise RuntimeError("sink down")

        pipeline = AlertPipeline(sinks=[broken, collected.append])
        alert = submit(pipeline, 0.0, LEVEL_PACKAGE)
        assert alert is not None
        assert collected == [alert]
        assert pipeline.stats()["sink_errors"] == 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dedup_window": -1.0},
            {"rate_window": 0.0},
            {"max_alerts_per_window": 0},
            {"escalate_threshold": 0},
            {"escalate_window": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AlertConfig(**kwargs).validate()
