"""Ops plane end to end: metrics, historian and HTTP API on a live
gateway.

The observability layer is a **pure observer**: with every hook
attached, gateway verdicts stay bit-identical to offline ``detect()``,
the historian's on-disk log reproduces those verdicts exactly (through
a kill-and-resume fail-over), the HTTP API serves live state during a
replay, and ``stats()`` exposes one schema whatever the worker mode.
"""

from __future__ import annotations

import json
import math
import urllib.request

import numpy as np
import pytest

from repro.ics.dataset import generate_stream
from repro.obs import Historian, MetricsRegistry, ObsServer, start_obs_in_thread
from repro.serve.alerts import AlertPipeline, RecentAlertsBuffer
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient


def _assert_records_match_offline(records, capture, offline):
    """The historian log IS the verdict stream: one record per package,
    in order, bit-identical to offline ``detect()`` on the capture."""
    assert [r.seq for r in records] == list(range(len(capture)))
    assert np.array_equal(
        np.array([r.verdict for r in records]), offline.is_anomaly
    )
    # The fused level is recorded wherever a verdict fired.
    for record in records:
        if record.verdict:
            assert record.level == offline.level[record.seq]
    # The process value rides along (NaN encodes command packages).
    for record, package in zip(records, capture):
        if package.pressure_measurement is None:
            assert math.isnan(record.process_value)
        else:
            assert record.process_value == package.pressure_measurement


class TestHistorianBitIdentity:
    def test_query_reproduces_offline_detect(self, tmp_path, detector, capture):
        metrics = MetricsRegistry()
        with Historian(tmp_path / "hist") as historian:
            handle = start_in_thread(
                detector,
                GatewayConfig(num_shards=2),
                metrics=metrics,
                historian=historian,
            )
            try:
                host, port = handle.address
                result = ReplayClient(
                    host, port, stream_key="site", protocol="modbus"
                ).replay(capture)
                stats = handle.stats()
            finally:
                handle.stop()
            records = historian.query(stream_key="site")
        assert result.complete
        _assert_records_match_offline(
            records, capture, detector.detect(capture)
        )
        # Metrics agree with stats(): same packages, same transport.
        snap = metrics.snapshot()
        assert (
            snap["gateway_packages_total"]["samples"][0]["value"]
            == stats["processed"]
            == len(capture)
        )
        frames = {
            s["labels"]["protocol"]: s["value"]
            for s in snap["gateway_transport_frames_decoded_total"]["samples"]
        }
        assert frames == {
            name: c["frames_decoded"]
            for name, c in stats["transport"].items()
        }

    def test_log_survives_kill_and_resume(self, tmp_path, detector, capture):
        # Crash mid-stream, restore from the periodic checkpoint with a
        # fresh Historian over the SAME root: the stitched log must
        # still be one complete, bit-identical verdict history.
        checkpoint = tmp_path / "gw.npz"
        root = tmp_path / "hist"
        half = len(capture) // 2
        with Historian(root) as historian:
            handle = start_in_thread(
                detector,
                GatewayConfig(
                    num_shards=2,
                    checkpoint_path=str(checkpoint),
                    checkpoint_every=20,
                ),
                historian=historian,
            )
            host, port = handle.address
            first = ReplayClient(host, port, stream_key="plant").replay(
                capture[:half]
            )
            assert first.complete
            handle.stop(checkpoint=True)

        with Historian(root) as historian:
            restored = DetectionGateway.from_checkpoint(
                str(checkpoint), detector=detector, historian=historian
            )
            handle = start_in_thread(None, gateway=restored)
            try:
                host, port = handle.address
                second = ReplayClient(host, port, stream_key="plant").replay(
                    capture
                )
            finally:
                handle.stop()
            assert second.start == half and second.complete
            records = historian.query(stream_key="plant")
            assert historian.stats()["segments"] == 2  # resume never appends
        _assert_records_match_offline(
            records, capture, detector.detect(capture)
        )


class TestHttpApiOnLiveGateway:
    def test_endpoints_serve_a_replayed_gateway(
        self, tmp_path, detector, capture
    ):
        metrics = MetricsRegistry()
        recent = RecentAlertsBuffer()
        pipeline = AlertPipeline([recent], metrics=metrics)
        with Historian(tmp_path / "hist", metrics=metrics) as historian:
            handle = start_in_thread(
                detector,
                GatewayConfig(),
                alerts=pipeline,
                metrics=metrics,
                historian=historian,
            )
            obs = start_obs_in_thread(
                ObsServer(
                    gateway=handle.gateway,
                    metrics=metrics,
                    historian=historian,
                    recent_alerts=recent,
                )
            )
            try:
                host, port = handle.address
                result = ReplayClient(host, port, stream_key="site").replay(
                    capture[:60]
                )
                assert result.complete
                ohost, oport = obs.address
                base = f"http://{ohost}:{oport}"

                with urllib.request.urlopen(f"{base}/stats", timeout=5) as r:
                    stats = json.loads(r.read())
                assert stats["processed"] == 60
                assert stats["routes"]["site"]["packages"] == 60

                with urllib.request.urlopen(f"{base}/metrics", timeout=5) as r:
                    text = r.read().decode("utf-8")
                assert "gateway_packages_total 60" in text
                assert 'gateway_transport_frames_decoded_total{protocol="modbus"}' in text
                assert "historian_records_total 60" in text

                query = f"{base}/historian/query?stream=site&limit=1000"
                with urllib.request.urlopen(query, timeout=5) as r:
                    payload = json.loads(r.read())
                assert payload["count"] == 60
                assert [rec["seq"] for rec in payload["records"]] == list(
                    range(60)
                )

                with urllib.request.urlopen(
                    f"{base}/alerts/recent", timeout=5
                ) as r:
                    alerts = json.loads(r.read())["alerts"]
                assert len(alerts) == recent.total

                with urllib.request.urlopen(f"{base}/", timeout=5) as r:
                    page = r.read().decode("utf-8")
                assert "site" in page and "Historian" in page
            finally:
                obs.stop()
                handle.stop()

    def test_alerts_carry_model_lineage(self, registry, scenario_detectors):
        # Routed gateways stamp every alert with the (scenario, version)
        # that judged the package, so alert storms correlate with
        # rollouts.
        capture = generate_stream("gas_pipeline", 30, 11)
        offline = scenario_detectors["gas_pipeline"].detect(capture)
        recent = RecentAlertsBuffer()
        gateway = DetectionGateway(
            config=GatewayConfig(),
            registry=registry,
            alerts=AlertPipeline([recent]),
        )
        handle = start_in_thread(None, gateway=gateway)
        try:
            host, port = handle.address
            result = ReplayClient(
                host, port, stream_key="site", scenario="gas_pipeline"
            ).replay(capture)
        finally:
            handle.stop()
        assert result.complete
        assert offline.is_anomaly.any()  # the capture includes attacks
        alerts = recent.snapshot()
        assert alerts  # so at least one alert emitted...
        for alert in alerts:  # ...and every one names its model
            assert alert["scenario"] == "gas_pipeline"
            assert alert["version"] == 1


def _schema(value):
    """Recursive key/type skeleton of a stats() payload."""
    if isinstance(value, dict):
        return {key: _schema(item) for key, item in sorted(value.items())}
    if isinstance(value, list):
        return [_schema(item) for item in value]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return type(value).__name__


class TestCrossModeStatsSchema:
    @pytest.mark.parametrize("routed", [False, True])
    def test_thread_and_process_stats_share_one_schema(
        self, routed, registry, detector, capture
    ):
        # Same replay through both shard backends: stats() must come
        # back with the identical key structure and value types (the
        # process backend reports through the pipe codec, which once
        # drifted from the in-process EngineStats schema).
        payloads = {}
        for mode in ("thread", "process"):
            if routed:
                gateway = DetectionGateway(
                    config=GatewayConfig(worker_mode=mode),
                    registry=registry,
                )
                handle = start_in_thread(None, gateway=gateway)
            else:
                handle = start_in_thread(
                    detector, GatewayConfig(worker_mode=mode)
                )
            try:
                host, port = handle.address
                kwargs = {"scenario": "gas_pipeline"} if routed else {}
                result = ReplayClient(
                    host, port, stream_key="site", **kwargs
                ).replay(capture[:40])
                assert result.complete
                payloads[mode] = handle.stats()
            finally:
                handle.stop()
        assert _schema(payloads["thread"]) == _schema(payloads["process"])
        # And not just in shape: identical inputs, identical counters.
        for mode in ("thread", "process"):
            shards = payloads[mode]["shards"]
            if routed:  # registry mode: {route_label: engine stats}
                total = sum(
                    engine["packages"]
                    for shard in shards
                    for engine in shard.values()
                )
            else:  # single mode: one engine-stats dict per shard
                total = sum(shard["packages"] for shard in shards)
            assert total == 40
