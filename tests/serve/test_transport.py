"""Tests for MBAP framing, the incremental decoder and package records."""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ics import modbus
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.ics.features import FEATURE_NAMES, Package
from repro.serve import transport
from repro.serve.transport import (
    KIND_DATA,
    KIND_OPEN,
    MbapDecoder,
    TransportError,
    decode_data,
    decode_error,
    decode_open,
    decode_open_ack,
    decode_verdict,
    encode_data,
    encode_error,
    encode_open,
    encode_open_ack,
    encode_verdict,
    rtu_frame_for,
    wrap_pdu,
)


def make_package(**overrides) -> Package:
    base = dict(
        address=4,
        crc_rate=0.003,
        function=16,
        length=29,
        setpoint=10.0,
        gain=0.8,
        reset_rate=0.2,
        deadband=1.0,
        cycle_time=1.0,
        rate=0.1,
        system_mode=2,
        control_scheme=0,
        pump=0,
        solenoid=0,
        pressure_measurement=None,
        command_response=1,
        time=12.5,
        label=0,
    )
    base.update(overrides)
    return Package(**base)


class TestMbapFraming:
    def test_wrap_and_decode_roundtrip(self):
        payload = wrap_pdu(encode_open("plant-1"), transaction_id=7, unit_id=4)
        frames = MbapDecoder().feed(payload)
        assert len(frames) == 1
        assert frames[0].transaction_id == 7
        assert frames[0].unit_id == 4
        assert frames[0].kind == KIND_OPEN
        assert decode_open(frames[0].pdu) == ("plant-1", None, None)

    def test_rejects_empty_and_oversized_pdus(self):
        with pytest.raises(TransportError):
            wrap_pdu(b"", 0)
        with pytest.raises(TransportError):
            wrap_pdu(bytes(transport.MAX_FRAME_BODY), 0)
        with pytest.raises(TransportError):
            wrap_pdu(b"\x41x", transaction_id=1 << 16)

    def test_byte_at_a_time_feeding(self):
        stream = b"".join(
            wrap_pdu(encode_verdict(i, bool(i % 2), i % 3), i + 1)
            for i in range(5)
        )
        decoder = MbapDecoder()
        frames = []
        for i in range(len(stream)):
            frames.extend(decoder.feed(stream[i : i + 1]))
        assert [decode_verdict(f.pdu)[0] for f in frames] == list(range(5))
        assert decoder.bytes_discarded == 0

    @given(st.lists(st.integers(0, 400), min_size=0, max_size=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_any_chunking_yields_same_frames(self, cuts, seed_bits):
        stream = b"".join(
            wrap_pdu(encode_verdict(seed_bits % 1000 + i, True, 1), i + 1)
            for i in range(3)
        )
        decoder = MbapDecoder()
        frames = []
        position = 0
        for cut in sorted(c % (len(stream) + 1) for c in cuts):
            frames.extend(decoder.feed(stream[position:cut]))
            position = cut
        frames.extend(decoder.feed(stream[position:]))
        assert len(frames) == 3
        assert decoder.bytes_discarded == 0

    def test_resync_after_garbage(self):
        good = wrap_pdu(encode_open("k"), 3)
        noise = b"\xff" * 23
        decoder = MbapDecoder()
        frames = decoder.feed(noise + good + noise + good)
        assert len(frames) == 2
        assert all(decode_open(f.pdu) == ("k", None, None) for f in frames)
        assert decoder.bytes_discarded == len(noise) * 2

    def test_resync_after_truncated_frame(self):
        # A torn frame has a valid header, so the bytes that follow are
        # consumed as its body — indistinguishable from a complete frame
        # with garbage content (upper layers reject it).  The decoder
        # must stay synchronized and still deliver the next real frame.
        good = wrap_pdu(encode_error("hello"), 2)
        torn = good[: len(good) - 3]
        decoder = MbapDecoder()
        assert decoder.feed(torn) == []
        frames = decoder.feed(b"\xff" * 40 + good)
        assert decode_error(frames[-1].pdu) == "hello"


class TestControlPdus:
    def test_open_ack_roundtrip(self):
        pdu = encode_open_ack(9, 1234)
        assert decode_open_ack(pdu) == (9, 1234)

    def test_verdict_roundtrip(self):
        pdu = encode_verdict(77, True, 2)
        assert decode_verdict(pdu) == (77, True, 2)

    def test_error_roundtrip(self):
        assert decode_error(encode_error("boom")) == "boom"

    def test_decoders_reject_wrong_kind(self):
        with pytest.raises(TransportError):
            decode_open_ack(encode_verdict(0, False, 0))
        with pytest.raises(TransportError):
            decode_verdict(encode_open_ack(0, 0))
        with pytest.raises(TransportError):
            decode_open(b"")

    def test_open_rejects_empty_and_huge_keys(self):
        with pytest.raises(TransportError):
            encode_open("")
        with pytest.raises(TransportError):
            encode_open("x" * 300)

    def test_open_scenario_tag_roundtrip(self):
        assert decode_open(encode_open("site-7", "water_tank")) == (
            "site-7",
            "water_tank",
            None,
        )
        # Untagged OPENs keep the pre-registry wire format byte for byte.
        assert encode_open("site-7") == b"\x41site-7"

    def test_open_protocol_tag_roundtrip(self):
        assert decode_open(encode_open("site-7", "water_tank", "iec104")) == (
            "site-7",
            "water_tank",
            "iec104",
        )
        # A protocol without a scenario leaves the middle field empty.
        pdu = encode_open("site-7", protocol="dnp3")
        assert pdu == b"\x41site-7\x00\x00dnp3"
        assert decode_open(pdu) == ("site-7", None, "dnp3")

    def test_open_rejects_bad_protocol_tags(self):
        with pytest.raises(TransportError):
            encode_open("k", protocol="")
        with pytest.raises(TransportError):
            encode_open("k", protocol="a\x00b")
        with pytest.raises(TransportError):
            encode_open("k", "s" * 120, "p" * 200)  # over MAX_OPEN_BODY
        # Extra NUL-separated fields are malformed, not future-proofing.
        with pytest.raises(TransportError):
            decode_open(b"\x41k\x00s\x00p\x00x")
        # A trailing NUL (empty protocol field) is malformed too.
        with pytest.raises(TransportError):
            decode_open(b"\x41k\x00s\x00")

    def test_open_rejects_bad_scenario_tags(self):
        with pytest.raises(TransportError):
            encode_open("k", "")
        with pytest.raises(TransportError):
            encode_open("k", "a\x00b")
        with pytest.raises(TransportError):
            encode_open("a\x00b", "water_tank")
        with pytest.raises(TransportError):
            encode_open("k", "x" * 300)
        # A NUL with nothing after it is a malformed tag, not "no tag".
        with pytest.raises(TransportError):
            decode_open(b"\x41key\x00")


class TestDataRecords:
    def test_roundtrip_write_command(self):
        package = make_package()
        frame = decode_data(encode_data(package, 42))
        assert frame.seq == 42
        assert frame.package == package
        assert frame.rtu.function == 16

    def test_roundtrip_preserves_none_fields(self):
        package = make_package(
            function=3,
            command_response=0,
            setpoint=None,
            gain=None,
            reset_rate=None,
            deadband=None,
            cycle_time=None,
            rate=None,
            pressure_measurement=9.873214,
        )
        assert decode_data(encode_data(package, 0)).package == package

    def test_roundtrip_full_capture_is_lossless(self):
        """Every simulator package — attacks included — survives the wire."""
        dataset = generate_dataset(DatasetConfig(num_cycles=120), seed=11)
        for seq, package in enumerate(dataset.all_packages):
            decoded = decode_data(encode_data(package, seq))
            assert decoded.package == package, f"package {seq} mangled"
            assert decoded.seq == seq

    def test_embedded_rtu_matches_logged_length_on_normal_traffic(self):
        """The rebuilt RTU frame is byte-faithful to the logged length."""
        dataset = generate_dataset(DatasetConfig(num_cycles=60), seed=5)
        normal = [p for p in dataset.all_packages if p.label == 0]
        assert normal
        for package in normal:
            assert rtu_frame_for(package).length == package.length

    def test_corrupt_embedded_frame_raises_crc_error(self):
        pdu = bytearray(encode_data(make_package(), 0))
        pdu[-1] ^= 0x40  # flip a CRC bit of the embedded RTU frame
        with pytest.raises(modbus.CrcError):
            decode_data(bytes(pdu))

    def test_truncated_record_rejected(self):
        pdu = encode_data(make_package(), 0)
        with pytest.raises(TransportError):
            decode_data(pdu[:40])
        with pytest.raises(TransportError):
            decode_data(bytes([KIND_DATA]))

    def test_non_integral_integer_feature_rejected(self):
        pdu = bytearray(encode_data(make_package(), 0))
        # Overwrite the 'function' feature double with 3.5.
        offset = 1 + 4 + 1 + FEATURE_NAMES.index("function") * 8
        pdu[offset : offset + 8] = struct.pack(">d", 3.5)
        with pytest.raises(TransportError):
            decode_data(bytes(pdu))

    @pytest.mark.parametrize("evil", [float("inf"), float("-inf")])
    def test_infinite_integer_feature_rejected_cleanly(self, evil):
        """±inf in an integer slot must fail as TransportError, not
        escape as OverflowError past the gateway's malformed handling."""
        pdu = bytearray(encode_data(make_package(), 0))
        offset = 1 + 4 + 1 + FEATURE_NAMES.index("address") * 8
        pdu[offset : offset + 8] = struct.pack(">d", evil)
        with pytest.raises(TransportError):
            decode_data(bytes(pdu))

    def test_seq_and_label_range_checked(self):
        with pytest.raises(TransportError):
            encode_data(make_package(), -1)
        with pytest.raises(TransportError):
            encode_data(make_package(label=300), 0)

    @given(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(0, 7),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, pressure, label, time):
        package = make_package(
            function=3,
            command_response=0,
            setpoint=None,
            gain=None,
            reset_rate=None,
            deadband=None,
            cycle_time=None,
            rate=None,
            pressure_measurement=pressure,
            time=time,
            label=label,
        )
        decoded = decode_data(encode_data(package, 1)).package
        assert decoded == package
        assert math.isclose(decoded.pressure_measurement, pressure, rel_tol=0.0)
