"""End-to-end gateway tests over real sockets.

The acceptance bar: a replay client streaming a labelled capture
through a live gateway gets alert decisions **bit-identical** to
offline ``CombinedDetector.detect()`` on the same packages, and killing
the gateway mid-capture then resuming from its periodic checkpoint
changes no decision.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.persistence import load_gateway_checkpoint, save_gateway_checkpoint
from repro.serve.alerts import AlertPipeline
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient, ReplayError
from repro.serve.transport import (
    KIND_ERROR,
    KIND_OPEN_ACK,
    KIND_VERDICT,
    MbapDecoder,
    decode_open_ack,
    encode_data,
    encode_open,
    wrap_pdu,
)
from repro.utils.artifact import ArtifactError


@pytest.fixture()
def offline(detector, capture):
    return detector.detect(capture)


def collect_frames(sock, decoder, count, timeout=10.0):
    """Read until ``count`` frames arrived (or time out)."""
    sock.settimeout(timeout)
    frames = []
    while len(frames) < count:
        data = sock.recv(65536)
        if not data:
            break
        frames.extend(decoder.feed(data))
    return frames


class TestEndToEnd:
    def test_replay_matches_offline_detection_bit_identically(
        self, detector, capture, offline
    ):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            result = ReplayClient(host, port, stream_key="plant-a").replay(capture)
            assert result.complete and result.start == 0
            assert np.array_equal(result.anomalies, offline.is_anomaly)
            assert np.array_equal(result.levels, offline.level)
            stats = handle.stats()
            assert stats["processed"] == len(capture)
            assert stats["shards"][0]["packages"] == len(capture)
            assert stats["alerts"]["emitted"] >= 1
        finally:
            handle.stop()

    def test_line_noise_changes_no_decision(self, detector, capture, offline):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            client = ReplayClient(
                host, port, stream_key="noisy", noise_every=5, noise_bytes=64
            )
            result = client.replay(capture)
            assert result.complete
            assert np.array_equal(result.anomalies, offline.is_anomaly)
            assert np.array_equal(result.levels, offline.level)
            assert handle.stats()["bytes_discarded"] > 0
        finally:
            handle.stop()

    def test_concurrent_streams_one_per_shard_match_offline(
        self, detector, capture
    ):
        """With one stream per shard every batch has one row, so each
        client must reproduce offline detection exactly — concurrently."""
        num_clients = 3
        slices = [capture[i::num_clients] for i in range(num_clients)]
        expected = [detector.detect(s) for s in slices]
        handle = start_in_thread(detector, GatewayConfig(num_shards=num_clients))
        try:
            host, port = handle.address
            results: dict[int, object] = {}

            def run(i):
                client = ReplayClient(host, port, stream_key=f"plant-{i}")
                results[i] = client.replay(slices[i])

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(num_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            for i in range(num_clients):
                assert results[i].complete, f"client {i} incomplete"
                assert np.array_equal(
                    results[i].anomalies, expected[i].is_anomaly
                ), f"client {i} diverged from offline detection"
                assert np.array_equal(results[i].levels, expected[i].level)
            stats = handle.stats()
            assert stats["streams"] == num_clients
            assert stats["processed"] == sum(len(s) for s in slices)
        finally:
            handle.stop()

    def test_concurrent_streams_share_one_shard(self, detector, capture):
        """Many sessions on one engine: everything is served, per-stream
        counts add up, and batching happens through one worker."""
        num_clients = 4
        slices = [capture[i::num_clients] for i in range(num_clients)]
        handle = start_in_thread(detector, GatewayConfig(num_shards=1))
        try:
            host, port = handle.address
            results: dict[int, object] = {}

            def run(i):
                client = ReplayClient(host, port, stream_key=f"s{i}", window=8)
                results[i] = client.replay(slices[i])

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(num_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            total = sum(len(s) for s in slices)
            for i in range(num_clients):
                assert results[i].complete
                assert results[i].judged == len(slices[i])
                # Whatever the batch composition, an alert always carries
                # a level tag and vice versa.
                anomalies, levels = results[i].anomalies, results[i].levels
                assert np.array_equal(anomalies, levels != 0)
            stats = handle.stats()
            assert stats["shards"][0]["packages"] == total
            assert stats["processed"] == total
        finally:
            handle.stop()

    def test_reconnect_resumes_where_the_stream_left_off(
        self, detector, capture, offline
    ):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            half = len(capture) // 2
            first = ReplayClient(host, port, stream_key="plant-a").replay(
                capture[:half]
            )
            assert first.complete and first.start == 0
            second = ReplayClient(host, port, stream_key="plant-a").replay(capture)
            assert second.start == half
            assert second.judged == len(capture) - half
            anomalies = np.concatenate([first.anomalies, second.anomalies])
            levels = np.concatenate([first.levels, second.levels])
            assert np.array_equal(anomalies, offline.is_anomaly)
            assert np.array_equal(levels, offline.level)
        finally:
            handle.stop()


class TestFailover:
    def test_kill_and_resume_changes_no_decision(
        self, detector, capture, offline, tmp_path
    ):
        checkpoint = tmp_path / "gateway.npz"
        config = GatewayConfig(
            checkpoint_path=str(checkpoint), checkpoint_every=40
        )
        first_handle = start_in_thread(detector, config)
        host, port = first_handle.address
        prefix = 100
        first = ReplayClient(host, port, stream_key="plant-a").replay(
            capture[:prefix]
        )
        assert first.complete
        assert first_handle.stats()["checkpoints_written"] >= 1
        # Hard kill: no shutdown checkpoint — resume must come from the
        # last periodic one, exactly like a crash.
        first_handle.stop(checkpoint=False)

        gateway = DetectionGateway.from_checkpoint(str(checkpoint))
        second_handle = start_in_thread(None, gateway=gateway)
        try:
            host, port = second_handle.address
            second = ReplayClient(host, port, stream_key="plant-a").replay(capture)
            assert second.complete
            resumed_at = second.start
            assert 0 < resumed_at <= prefix
            assert resumed_at % 40 == 0  # a periodic checkpoint boundary

            # Replayed overlap reproduces the pre-kill verdicts...
            overlap = prefix - resumed_at
            assert np.array_equal(
                first.anomalies[resumed_at:], second.anomalies[:overlap]
            )
            # ...and the stitched run is the uninterrupted offline run.
            anomalies = np.concatenate(
                [first.anomalies[:resumed_at], second.anomalies]
            )
            levels = np.concatenate([first.levels[:resumed_at], second.levels])
            assert np.array_equal(anomalies, offline.is_anomaly)
            assert np.array_equal(levels, offline.level)
        finally:
            second_handle.stop()

    def test_shutdown_checkpoint_resumes_exactly(self, detector, capture, tmp_path):
        checkpoint = tmp_path / "gateway.npz"
        config = GatewayConfig(checkpoint_path=str(checkpoint))
        handle = start_in_thread(detector, config)
        host, port = handle.address
        ReplayClient(host, port, stream_key="plant-a").replay(capture[:60])
        handle.stop(checkpoint=True)  # graceful: snapshot at shutdown

        gateway = DetectionGateway.from_checkpoint(str(checkpoint))
        handle2 = start_in_thread(None, gateway=gateway)
        try:
            host, port = handle2.address
            result = ReplayClient(host, port, stream_key="plant-a").replay(capture)
            assert result.start == 60  # nothing re-judged
        finally:
            handle2.stop()

    def test_checkpoint_topology_overrides_config(self, detector, capture, tmp_path):
        path = tmp_path / "gateway.npz"
        engines = [detector.engine(1), detector.engine(0), detector.engine(0)]
        save_gateway_checkpoint(
            path, detector, engines, {"k": (0, engines[0].stream_ids[0])}
        )
        gateway = DetectionGateway.from_checkpoint(
            str(path), GatewayConfig(num_shards=1)
        )
        assert gateway.config.num_shards == 3

    def test_torn_binding_table_rejected(self, detector, tmp_path):
        path = tmp_path / "gateway.npz"
        engine = detector.engine(1)
        with pytest.raises(ValueError):
            save_gateway_checkpoint(
                path, detector, [engine], {"k": (0, 999)}  # unattached stream
            )
        with pytest.raises(ValueError):
            save_gateway_checkpoint(
                path, detector, [engine], {"k": (5, engine.stream_ids[0])}
            )

    def test_gateway_checkpoint_roundtrip(self, detector, tmp_path):
        path = tmp_path / "gateway.npz"
        engines = [detector.engine(2), detector.engine(1)]
        bindings = {
            "a": (0, engines[0].stream_ids[0]),
            "b": (0, engines[0].stream_ids[1]),
            "c": (1, engines[1].stream_ids[0]),
        }
        save_gateway_checkpoint(path, detector, engines, bindings, meta={"x": 1})
        restored = load_gateway_checkpoint(path)
        assert restored.bindings == bindings
        assert [e.num_streams for e in restored.engines] == [2, 1]
        assert restored.meta == {"x": 1}

    def test_wrong_kind_artifact_rejected(self, detector, tmp_path):
        from repro.persistence import save_detector

        path = tmp_path / "detector.npz"
        save_detector(detector, path)
        with pytest.raises(ArtifactError):
            load_gateway_checkpoint(path)


class TestProtocolEdges:
    def open_stream(self, address, key="raw"):
        sock = socket.create_connection(address, 10.0)
        decoder = MbapDecoder()
        sock.sendall(wrap_pdu(encode_open(key), 1))
        frames = collect_frames(sock, decoder, 1)
        assert frames[0].kind == KIND_OPEN_ACK
        _, seen = decode_open_ack(frames[0].pdu)
        return sock, decoder, seen

    def test_second_connection_on_live_key_rejected(self, detector, capture):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            sock, _, _ = self.open_stream(handle.address, "dup")
            rival = socket.create_connection(handle.address, 10.0)
            rival.sendall(wrap_pdu(encode_open("dup"), 1))
            frames = collect_frames(rival, MbapDecoder(), 1)
            assert frames and frames[0].kind == KIND_ERROR
            rival.close()
            sock.close()
        finally:
            handle.stop()

    def test_out_of_order_seq_is_fatal(self, detector, capture):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            sock, decoder, seen = self.open_stream(handle.address)
            assert seen == 0
            sock.sendall(
                wrap_pdu(encode_data(capture[0], 17), 2)  # expected seq 0
            )
            frames = collect_frames(sock, decoder, 1)
            assert frames and frames[0].kind == KIND_ERROR
            sock.close()
        finally:
            handle.stop()

    def test_corrupt_embedded_rtu_is_counted_and_dropped(self, detector, capture):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            sock, decoder, _ = self.open_stream(handle.address)
            corrupt = bytearray(encode_data(capture[0], 0))
            corrupt[-1] ^= 0x01  # break the embedded RTU CRC
            sock.sendall(wrap_pdu(bytes(corrupt), 2))
            # The mangled package is dropped, the session survives: the
            # next valid package still gets verdict seq 0.
            sock.sendall(wrap_pdu(encode_data(capture[0], 0), 3))
            frames = collect_frames(sock, decoder, 1)
            assert frames and frames[0].kind == KIND_VERDICT
            deadline = time.monotonic() + 5.0
            while handle.stats()["crc_errors"] < 1:
                assert time.monotonic() < deadline, "crc error never counted"
                time.sleep(0.01)
            sock.close()
        finally:
            handle.stop()

    def test_data_before_open_is_fatal(self, detector, capture):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            sock = socket.create_connection(handle.address, 10.0)
            sock.sendall(wrap_pdu(encode_data(capture[0], 0), 1))
            frames = collect_frames(sock, MbapDecoder(), 1)
            assert frames and frames[0].kind == KIND_ERROR
            sock.close()
        finally:
            handle.stop()

    def test_replaying_beyond_capture_raises(self, detector, capture):
        handle = start_in_thread(detector, GatewayConfig())
        try:
            host, port = handle.address
            ReplayClient(host, port, stream_key="k").replay(capture[:50])
            with pytest.raises(ReplayError):
                ReplayClient(host, port, stream_key="k").replay(capture[:10])
        finally:
            handle.stop()

    def test_backpressure_under_tiny_queue(self, detector, capture, offline):
        """A one-slot shard queue still serves everything, just slower."""
        handle = start_in_thread(detector, GatewayConfig(max_pending=1))
        try:
            host, port = handle.address
            result = ReplayClient(
                host, port, stream_key="slow", window=64
            ).replay(capture)
            assert result.complete
            assert np.array_equal(result.anomalies, offline.is_anomaly)
        finally:
            handle.stop()
