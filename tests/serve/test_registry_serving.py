"""Heterogeneous serving integration: routing, auto-identification,
hot-swap and routed checkpoint fail-over — all over real sockets.

The acceptance bar mirrors the homogeneous gateway tests: whatever the
routing path (explicit tag, auto-identification, hot-swap boundary,
checkpoint restore), every stream's verdicts must be **bit-identical**
to offline ``detect()`` with the exact artifact that served it.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import generate_dataset, generate_stream
from repro.persistence import checkpoint_meta
from repro.registry import ModelRegistry
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient, ReplayError


@pytest.fixture(scope="module")
def captures():
    """One deterministic live capture per plant (attacks included)."""
    return {
        name: generate_stream(name, 30, 11)
        for name in ("gas_pipeline", "water_tank", "hvac_chiller")
    }


def routed_gateway(registry, **config):
    gateway = DetectionGateway(
        config=GatewayConfig(**config), registry=registry
    )
    return start_in_thread(None, gateway=gateway)


class TestRouting:
    def test_tagged_streams_score_with_their_own_artifacts(
        self, registry, scenario_detectors, captures
    ):
        handle = routed_gateway(registry, num_shards=2)
        try:
            host, port = handle.address
            results = {}
            for name in ("gas_pipeline", "water_tank"):
                client = ReplayClient(
                    host, port, stream_key=f"site-{name}", scenario=name
                )
                results[name] = client.replay(captures[name])
            stats = handle.stats()
            for name, result in results.items():
                assert result.complete
                offline = scenario_detectors[name].detect(captures[name])
                assert np.array_equal(result.anomalies, offline.is_anomaly)
                assert np.array_equal(result.levels, offline.level)
                route = stats["routes"][f"site-{name}"]
                assert route["scenario"] == name
                assert route["version"] == 1
                assert route["packages"] == len(captures[name])
            assert stats["mode"] == "registry"
        finally:
            handle.stop()

    def test_untagged_stream_is_auto_identified(
        self, registry, scenario_detectors, captures
    ):
        handle = routed_gateway(registry)
        try:
            host, port = handle.address
            result = ReplayClient(host, port, stream_key="mystery").replay(
                captures["hvac_chiller"]
            )
            assert result.complete
            offline = scenario_detectors["hvac_chiller"].detect(
                captures["hvac_chiller"]
            )
            assert np.array_equal(result.anomalies, offline.is_anomaly)
            assert np.array_equal(result.levels, offline.level)
            stats = handle.stats()
            assert stats["identified"] == 1
            assert stats["routes"]["mystery"]["scenario"] == "hvac_chiller"
        finally:
            handle.stop()

    def test_unregistered_plant_is_refused_not_misrouted(
        self, tmp_path, scenario_detectors, captures
    ):
        # Registry without the water tank: its traffic must bounce with
        # an abstention error, and no route may be created for it.
        partial = ModelRegistry(tmp_path / "partial")
        for name in ("gas_pipeline", "hvac_chiller"):
            partial.publish(scenario_detectors[name], name)
        handle = routed_gateway(partial)
        try:
            host, port = handle.address
            with pytest.raises(ReplayError, match="cannot identify"):
                ReplayClient(host, port, stream_key="intruder").replay(
                    captures["water_tank"]
                )
            stats = handle.stats()
            assert stats["abstained"] == 1
            assert stats["routes"] == {}
        finally:
            handle.stop()

    def test_short_untagged_stream_identifies_before_the_full_window(
        self, registry, scenario_detectors
    ):
        # A capture shorter than the probe window (one polling cycle is
        # only ~4 packages) must still be identified and judged — the
        # gateway routes as soon as the probe is decisive instead of
        # waiting for a window that will never fill.
        capture = generate_stream("water_tank", 2, 17)
        assert len(capture) < 16  # genuinely shorter than probe_window
        handle = routed_gateway(registry)
        try:
            host, port = handle.address
            result = ReplayClient(host, port, stream_key="tiny").replay(capture)
            assert result.complete
            assert result.judged == len(capture)
            offline = scenario_detectors["water_tank"].detect(capture)
            assert np.array_equal(result.anomalies, offline.is_anomaly)
            assert handle.stats()["routes"]["tiny"]["scenario"] == "water_tank"
        finally:
            handle.stop()

    def test_unknown_scenario_tag_is_a_protocol_error(self, registry, captures):
        handle = routed_gateway(registry)
        try:
            host, port = handle.address
            with pytest.raises(ReplayError, match="no published versions"):
                ReplayClient(
                    host, port, stream_key="typo", scenario="steel_mill"
                ).replay(captures["gas_pipeline"])
        finally:
            handle.stop()

    def test_reconnect_resumes_on_the_same_route(self, registry, captures):
        capture = captures["water_tank"]
        handle = routed_gateway(registry)
        try:
            host, port = handle.address
            half = len(capture) // 2
            first = ReplayClient(
                host, port, stream_key="wt", scenario="water_tank"
            ).replay(capture[:half])
            assert first.complete
            # Untagged reconnect: the sticky binding routes it — no
            # re-identification, no probe stall.
            second = ReplayClient(host, port, stream_key="wt").replay(capture)
            assert second.start == half
            assert second.complete
            assert handle.stats()["identified"] == 0
        finally:
            handle.stop()


class TestHotSwap:
    @pytest.fixture(scope="class")
    def gas_v2(self):
        """A second gas-pipeline model with different weights (rng 5)."""
        from repro.scenarios import get_scenario

        dataset = generate_dataset(
            get_scenario("gas_pipeline").dataset_config(num_cycles=250), seed=3
        )
        detector, _ = CombinedDetector.train(
            dataset.train_fragments,
            dataset.validation_fragments,
            DetectorConfig(
                timeseries=TimeSeriesDetectorConfig(hidden_sizes=(8,), epochs=1)
            ),
            rng=5,
        )
        return detector

    def test_publish_swaps_at_a_deterministic_boundary(
        self, tmp_path, scenario_detectors, gas_v2, captures
    ):
        """Judge a prefix on v1, publish v2, judge the rest: the stitched
        stream must equal v1-offline on the prefix and fresh v2-offline
        on the suffix — the drain-and-swap contract, bit for bit."""
        capture = captures["gas_pipeline"]
        own = ModelRegistry(tmp_path / "swap")
        v1 = scenario_detectors["gas_pipeline"]
        own.publish(v1, "gas_pipeline")
        handle = routed_gateway(own)
        try:
            host, port = handle.address
            boundary = len(capture) // 2
            first = ReplayClient(
                host, port, stream_key="plant", scenario="gas_pipeline"
            ).replay(capture[:boundary])
            assert first.complete

            own.publish(gas_v2, "gas_pipeline")  # activates v2 -> hot-swap
            deadline = time.monotonic() + 5.0
            while handle.stats().get("swaps_applied", 0) < 1:
                assert time.monotonic() < deadline, "hot-swap never applied"
                time.sleep(0.01)

            second = ReplayClient(host, port, stream_key="plant").replay(capture)
            assert second.complete
            assert second.start == boundary  # zero packages lost or re-judged

            assert np.array_equal(
                first.anomalies, v1.detect(capture[:boundary]).is_anomaly
            )
            suffix = gas_v2.detect(capture[boundary:])
            assert np.array_equal(second.anomalies, suffix.is_anomaly)
            assert np.array_equal(second.levels, suffix.level)

            route = handle.stats()["routes"]["plant"]
            assert route["version"] == 2
            assert route["seq_base"] == boundary
            assert route["packages"] == len(capture)
        finally:
            handle.stop()

    def test_swap_under_live_load_drops_zero_packages(
        self, tmp_path, scenario_detectors, gas_v2
    ):
        """Publish v2 while a replay is mid-flight: every package still
        gets exactly one in-order verdict, and the stitched stream is
        v1-offline up to the reported boundary, fresh v2-offline after."""
        capture = generate_stream("gas_pipeline", 60, 13)
        own = ModelRegistry(tmp_path / "live-swap")
        v1 = scenario_detectors["gas_pipeline"]
        own.publish(v1, "gas_pipeline")
        handle = routed_gateway(own, max_pending=8)
        try:
            host, port = handle.address

            def promote_mid_flight():
                deadline = time.monotonic() + 10.0
                while handle.stats()["processed"] < len(capture) // 4:
                    if time.monotonic() > deadline:
                        return
                    time.sleep(0.002)
                own.publish(gas_v2, "gas_pipeline")

            publisher = threading.Thread(target=promote_mid_flight)
            publisher.start()
            result = ReplayClient(
                host, port, stream_key="plant", scenario="gas_pipeline", window=8
            ).replay(capture)
            publisher.join(15.0)

            assert result.complete
            assert result.judged == len(capture)  # zero dropped packages
            stats = handle.stats()
            assert stats["swaps_applied"] == 1
            boundary = stats["routes"]["plant"]["seq_base"]
            assert 0 < boundary < len(capture), "swap missed the live window"
            expected_head = v1.detect(capture[:boundary])
            expected_tail = gas_v2.detect(capture[boundary:])
            assert np.array_equal(
                result.anomalies,
                np.concatenate(
                    [expected_head.is_anomaly, expected_tail.is_anomaly]
                ),
            )
            assert np.array_equal(
                result.levels,
                np.concatenate([expected_head.level, expected_tail.level]),
            )
        finally:
            handle.stop()

    def test_cross_process_promote_is_picked_up_by_polling(
        self, tmp_path, scenario_detectors, gas_v2, captures
    ):
        """A promotion through a *different* registry handle (no shared
        subscription — the `repro registry promote` shape) must reach a
        polling gateway."""
        capture = captures["gas_pipeline"]
        root = tmp_path / "poll"
        own = ModelRegistry(root)
        own.publish(scenario_detectors["gas_pipeline"], "gas_pipeline")
        own.publish(gas_v2, "gas_pipeline", activate=False)  # dark v2
        handle = routed_gateway(
            ModelRegistry(root), registry_poll_seconds=0.05
        )
        try:
            host, port = handle.address
            ReplayClient(
                host, port, stream_key="plant", scenario="gas_pipeline"
            ).replay(capture[:40])
            # Another process flips the pin; only the poll can see it.
            ModelRegistry(root).promote("gas_pipeline", 2)
            deadline = time.monotonic() + 5.0
            while handle.stats().get("swaps_applied", 0) < 1:
                assert time.monotonic() < deadline, "poll never applied the swap"
                time.sleep(0.02)
            assert handle.stats()["routes"]["plant"]["version"] == 2
        finally:
            handle.stop()


class TestRoutedFailover:
    def test_checkpoint_preserves_route_table_and_resumes_exactly(
        self, tmp_path, registry, scenario_detectors, captures
    ):
        checkpoint = tmp_path / "routed.npz"
        capture_a = captures["gas_pipeline"]
        capture_b = captures["water_tank"]
        gateway = DetectionGateway(
            config=GatewayConfig(num_shards=2, checkpoint_path=str(checkpoint)),
            registry=registry,
        )
        handle = start_in_thread(None, gateway=gateway)
        host, port = handle.address
        half_a, half_b = len(capture_a) // 2, len(capture_b) // 3
        first_a = ReplayClient(
            host, port, stream_key="a", scenario="gas_pipeline"
        ).replay(capture_a[:half_a])
        first_b = ReplayClient(host, port, stream_key="b").replay(
            capture_b[:half_b]
        )  # auto-identified route must also survive the checkpoint
        assert first_a.complete and first_b.complete
        handle.stop(checkpoint=True)

        meta = checkpoint_meta(checkpoint)
        assert meta["routes"] == {
            "a": {"scenario": "gas_pipeline", "version": 1, "protocol": "modbus"},
            "b": {"scenario": "water_tank", "version": 1, "protocol": "modbus"},
        }

        restored = DetectionGateway.from_checkpoint(
            str(checkpoint), registry=registry
        )
        assert restored.config.num_shards == 2
        handle2 = start_in_thread(None, gateway=restored)
        try:
            host, port = handle2.address
            stats = handle2.stats()
            assert stats["routes"]["a"]["scenario"] == "gas_pipeline"
            assert stats["routes"]["b"]["scenario"] == "water_tank"
            second_a = ReplayClient(host, port, stream_key="a").replay(capture_a)
            second_b = ReplayClient(host, port, stream_key="b").replay(capture_b)
            assert second_a.start == half_a and second_b.start == half_b
            for name, first, second, capture in (
                ("gas_pipeline", first_a, second_a, capture_a),
                ("water_tank", first_b, second_b, capture_b),
            ):
                stitched = np.concatenate([first.anomalies, second.anomalies])
                offline = scenario_detectors[name].detect(capture)
                assert np.array_equal(stitched, offline.is_anomaly), name
        finally:
            handle2.stop()

    def test_routed_checkpoint_requires_a_registry(self, tmp_path, registry):
        checkpoint = tmp_path / "routed.npz"
        gateway = DetectionGateway(
            config=GatewayConfig(checkpoint_path=str(checkpoint)),
            registry=registry,
        )
        handle = start_in_thread(None, gateway=gateway)
        handle.stop(checkpoint=True)
        with pytest.raises(ValueError, match="registry"):
            DetectionGateway.from_checkpoint(str(checkpoint))

    def test_single_checkpoint_cannot_resume_under_a_registry(
        self, tmp_path, detector, registry, capture
    ):
        # The reverse mismatch: an operator resuming an old
        # single-detector checkpoint with --registry must get an error,
        # not a gateway that silently serves one embedded model.
        checkpoint = tmp_path / "single.npz"
        handle = start_in_thread(
            detector, GatewayConfig(checkpoint_path=str(checkpoint))
        )
        host, port = handle.address
        ReplayClient(host, port, stream_key="k").replay(capture[:20])
        handle.stop(checkpoint=True)
        with pytest.raises(ValueError, match="single-detector"):
            DetectionGateway.from_checkpoint(str(checkpoint), registry=registry)

    def test_single_mode_rejects_registry_state_mix(self, detector, registry):
        with pytest.raises(ValueError):
            DetectionGateway(detector, registry=registry)
        with pytest.raises(ValueError):
            DetectionGateway()
