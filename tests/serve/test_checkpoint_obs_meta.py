"""Gateway checkpoint meta with *mixed* obs config: incidents on with
monitors off — and vice versa — in both worker backends.

The incident plane's state rides checkpoint metadata, but the two
planes are independent knobs: a checkpoint must carry exactly the
state of the planes that were enabled, a resume with the same flags
must restore that state bit-identically, and a resume that disables a
plane must ignore (not lose) its saved meta.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient
from repro.utils.artifact import read_meta

COMBOS = [
    pytest.param(True, False, id="incidents-on-monitors-off"),
    pytest.param(False, True, id="incidents-off-monitors-on"),
]


def _replay(handle, capture, stream="plant"):
    host, port = handle.address
    result = ReplayClient(host, port, stream_key=stream).replay(capture)
    assert result.complete
    return result


class TestMixedObsCheckpointMeta:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("incidents_on,monitors_on", COMBOS)
    def test_meta_round_trips_exactly_the_enabled_planes(
        self, mode, incidents_on, monitors_on, tmp_path, detector, capture
    ):
        checkpoint = tmp_path / f"{mode}-{incidents_on}-{monitors_on}.npz"
        half = len(capture) // 2
        offline = detector.detect(capture)

        gateway = DetectionGateway(
            detector,
            GatewayConfig(
                num_shards=2,
                worker_mode=mode,
                checkpoint_path=str(checkpoint),
            ),
            incidents=incidents_on,
            monitors=monitors_on,
        )
        assert (gateway.incidents is not None) == incidents_on
        assert (gateway.monitors is not None) == monitors_on
        handle = start_in_thread(None, gateway=gateway)
        try:
            first = _replay(handle, capture[:half])
        finally:
            handle.stop(checkpoint=True)

        saved_incidents = (
            gateway.incidents.state_dict() if incidents_on else None
        )
        saved_monitors = gateway.monitors.state_dict() if monitors_on else None
        if monitors_on:
            # The monitors actually watched the stream before the stop.
            streams = saved_monitors["streams"]
            assert streams["plant"]["packages"] == half

        # The on-disk meta holds exactly the enabled planes.
        meta = read_meta(str(checkpoint))["meta"]
        assert ("incidents" in meta) == incidents_on
        assert ("monitors" in meta) == monitors_on

        # Resume with matching flags: enabled state restored
        # bit-identically, the disabled plane still off.
        restored = DetectionGateway.from_checkpoint(
            str(checkpoint),
            detector=detector,
            incidents=incidents_on,
            monitors=monitors_on,
        )
        assert (restored.incidents is not None) == incidents_on
        assert (restored.monitors is not None) == monitors_on
        if incidents_on:
            assert restored.incidents.state_dict() == saved_incidents
        if monitors_on:
            assert restored.monitors.state_dict() == saved_monitors

        handle = start_in_thread(None, gateway=restored)
        try:
            second = _replay(handle, capture)
            assert second.start == half  # nothing re-judged
        finally:
            handle.stop()
        anomalies = np.concatenate([first.anomalies, second.anomalies])
        levels = np.concatenate([first.levels, second.levels])
        assert np.array_equal(anomalies, offline.is_anomaly)
        assert np.array_equal(levels, offline.level)
        if monitors_on:
            monitor_streams = restored.monitors.state_dict()["streams"]
            assert monitor_streams["plant"]["packages"] == len(capture)

    def test_disabling_a_plane_on_resume_ignores_its_meta(
        self, tmp_path, detector, capture
    ):
        """A checkpoint written with both planes on resumes cleanly with
        either plane forced off — saved meta is skipped, not an error."""
        checkpoint = tmp_path / "both-on.npz"
        handle = start_in_thread(
            detector,
            GatewayConfig(num_shards=2, checkpoint_path=str(checkpoint)),
        )
        try:
            _replay(handle, capture[: len(capture) // 2])
        finally:
            handle.stop(checkpoint=True)
        meta = read_meta(str(checkpoint))["meta"]
        assert "incidents" in meta and "monitors" in meta

        restored = DetectionGateway.from_checkpoint(
            str(checkpoint), detector=detector, incidents=False, monitors=True
        )
        assert restored.incidents is None
        assert restored.monitors is not None

        restored = DetectionGateway.from_checkpoint(
            str(checkpoint), detector=detector, incidents=True, monitors=False
        )
        assert restored.incidents is not None
        assert restored.monitors is None
        # The kept plane still restored its saved state.
        assert restored.incidents.state_dict() == meta["incidents"]
