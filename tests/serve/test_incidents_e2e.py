"""Incident plane end to end: a multi-stream alert storm on a live
gateway folds into one cross-stream incident served by ``/incidents``,
the correlator and drift monitors survive a kill-and-resume with
bit-identical state, and ``repro incidents`` reconstructs the exact
same incident set offline from the JSONL alert log + historian.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main
from repro.obs import Historian, MetricsRegistry, ObsServer, start_obs_in_thread
from repro.serve.alerts import (
    Alert,
    AlertPipeline,
    JsonlSink,
    Severity,
)
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

STREAMS = ("site-00", "site-01", "site-02", "site-03")


def _replay(handle, streams, capture):
    host, port = handle.address
    results = {}
    for stream in streams:
        results[stream] = ReplayClient(
            host, port, stream_key=stream
        ).replay(capture)
        assert results[stream].complete
    return results


def _strip_enrichment(incidents):
    return [
        {k: v for k, v in incident.items() if k != "historian"}
        for incident in incidents
    ]


class TestIncidentPlaneEndToEnd:
    def test_storm_survives_kill_resume_and_offline_replay(
        self, tmp_path, detector, capture
    ):
        alerts_log = tmp_path / "alerts.jsonl"
        checkpoint = tmp_path / "gw.npz"
        hist_root = tmp_path / "hist"
        half = len(capture) // 2
        metrics = MetricsRegistry()

        # Phase 1: half the capture on every stream, then a checkpoint
        # "crash".  The correlator runs with its defaults — the same
        # defaults `repro incidents` uses, so the offline replay below
        # needs no extra flags to match.
        sink = JsonlSink(alerts_log)
        with Historian(hist_root) as historian:
            handle = start_in_thread(
                detector,
                GatewayConfig(num_shards=2, checkpoint_path=str(checkpoint)),
                alerts=AlertPipeline([sink], metrics=metrics),
                metrics=metrics,
                historian=historian,
            )
            obs = start_obs_in_thread(
                ObsServer(gateway=handle.gateway, metrics=metrics)
            )
            try:
                _replay(handle, STREAMS, capture[:half])
                ohost, oport = obs.address
                with urllib.request.urlopen(
                    f"http://{ohost}:{oport}/incidents", timeout=5
                ) as resp:
                    live = json.loads(resp.read())
            finally:
                obs.stop()
                handle.stop(checkpoint=True)
            sink.close()

        # The storm is already visible mid-flight: one incident folding
        # alerts from (at least) 3 of the 4 streams.
        mid_flight = live["open"] + live["resolved"]
        assert mid_flight, "no incident opened during the storm"
        storm = max(mid_flight, key=lambda inc: len(inc["streams"]))
        assert len(storm["streams"]) >= 3
        assert storm["alerts"] >= 3
        assert set(storm["streams"]) <= set(STREAMS)

        state_at_stop = handle.gateway.incidents.state_dict()
        monitors_at_stop = handle.gateway.monitors.state_dict()

        # Phase 2: resume from the checkpoint.  Incident and monitor
        # state come back bit-identically, then the storm continues:
        # the original streams resume mid-capture and two more join.
        sink = JsonlSink(alerts_log)
        with Historian(hist_root) as historian:
            restored = DetectionGateway.from_checkpoint(
                str(checkpoint),
                detector=detector,
                alerts=AlertPipeline([sink]),
                historian=historian,
            )
            assert restored.incidents.state_dict() == state_at_stop
            assert restored.monitors.state_dict() == monitors_at_stop
            handle = start_in_thread(None, gateway=restored)
            try:
                resumed = _replay(handle, STREAMS[:2], capture)
                _replay(handle, STREAMS[2:], capture)
            finally:
                handle.stop()
            sink.close()
        for stream in STREAMS[:2]:
            assert resumed[stream].start == half  # resumed, not replayed

        final = restored.incidents.snapshot()
        incidents = sorted(
            final["open"] + final["resolved"], key=lambda inc: inc["id"]
        )
        storm = max(incidents, key=lambda inc: len(inc["streams"]))
        assert sorted(storm["streams"]) == sorted(STREAMS)
        # Every alert ever emitted — before AND after the kill — was
        # absorbed into an incident, and the JSONL log agrees.
        logged = sum(1 for ln in alerts_log.read_text().splitlines() if ln)
        assert final["counts"]["alerts_absorbed"] == logged
        assert logged > 0

        # The monitors watched every package of every stream — across
        # the kill — without ever firing on this steady workload.
        drift = restored.stats()["drift"]
        assert {
            key: entry["packages"] for key, entry in drift["streams"].items()
        } == {stream: len(capture) for stream in STREAMS}
        assert drift["drift_alerts"] == 0

        # Phase 3: offline reconstruction.  The stitched JSONL log
        # replayed through `repro incidents` (same correlator defaults)
        # reproduces the live incident set exactly, and the historian
        # enrichment accounts for every logged package.
        out = tmp_path / "incidents.json"
        assert (
            main(
                [
                    "incidents",
                    "--alerts-jsonl",
                    str(alerts_log),
                    "--historian",
                    str(hist_root),
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert _strip_enrichment(payload["incidents"]) == incidents
        assert payload["counts"] == final["counts"]
        offline_storm = max(
            payload["incidents"], key=lambda inc: len(inc["streams"])
        )
        anomalies = int(detector.detect(capture).is_anomaly.sum())
        for stream in STREAMS:
            context = offline_storm["historian"][stream]
            assert context["packages"] == len(capture)
            assert context["anomalous"] == anomalies


class TestIncidentsCli:
    def _write_log(self, path, alerts):
        path.write_text(
            "".join(json.dumps(a.to_dict(), sort_keys=True) + "\n" for a in alerts)
        )

    def _alert(self, stream, seq, time, scenario="gas_pipeline"):
        return Alert(
            stream=stream,
            seq=seq,
            time=time,
            level=1,
            severity=Severity.HIGH,
            escalated=False,
            repeats=0,
            label=1,
            scenario=scenario,
            version=1,
        )

    def test_reconstructs_synthetic_log_with_flags(self, tmp_path, capsys):
        log = tmp_path / "a.jsonl"
        self._write_log(
            log,
            [
                self._alert("plant-a-gas", 0, 0.0),
                self._alert("plant-a-aux", 1, 1.0),
                self._alert("plant-b-gas", 2, 2.0),
                self._alert("plant-a-gas", 3, 500.0),
            ],
        )
        out = tmp_path / "o.json"
        assert (
            main(
                [
                    "incidents",
                    "--alerts-jsonl",
                    str(log),
                    "--window",
                    "10",
                    "--resolve-after",
                    "20",
                    "--group-prefix-parts",
                    "2",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["alerts_replayed"] == 4
        assert payload["config"]["group_prefix_parts"] == 2
        groups = {inc["group"] for inc in payload["incidents"]}
        assert groups == {"plant-a", "plant-b"}
        # plant-a: one incident resolved by the 500s gap, one reopened.
        assert payload["counts"]["opened_total"] == 3
        assert "replayed 4 alert(s)" in capsys.readouterr().out

    def test_rejects_malformed_records_with_location(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        self._write_log(log, [self._alert("s", 0, 0.0)])
        with open(log, "a") as handle:
            handle.write('{"not": "an alert"}\n')
        with pytest.raises(SystemExit, match="bad.jsonl:2"):
            main(["incidents", "--alerts-jsonl", str(log)])

    def test_rejects_invalid_window(self, tmp_path):
        log = tmp_path / "a.jsonl"
        self._write_log(log, [])
        with pytest.raises(SystemExit, match="resolve_after"):
            main(
                [
                    "incidents",
                    "--alerts-jsonl",
                    str(log),
                    "--window",
                    "50",
                    "--resolve-after",
                    "10",
                ]
            )
