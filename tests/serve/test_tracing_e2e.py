"""Tracing plane end to end: spans ride the live serving path in both
worker backends without perturbing a single verdict, sampled trace ids
are bit-stable across a kill-and-resume replay, the ``/traces/*``
endpoints serve the store over real sockets, and ``repro trace``
aggregates the JSONL export offline.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, ObsServer, start_obs_in_thread
from repro.obs.tracing import TraceConfig, Tracer
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

#: Dense enough to sample plenty of the 150-package capture.
SAMPLE_EVERY = 4

THREAD_STAGES = {"decode", "route", "queue", "tick", "deliver"}
PROCESS_STAGES = {"decode", "route", "queue", "worker", "pipe", "deliver"}


def _replay(handle, capture, stream="plant"):
    host, port = handle.address
    result = ReplayClient(host, port, stream_key=stream).replay(capture)
    assert result.complete
    return result


def _expected_samples(tracer, stream, seqs):
    return {seq for seq in seqs if tracer.should_sample(stream, seq)}


class TestPureObserver:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_verdicts_bit_identical_and_stages_complete(
        self, mode, detector, capture
    ):
        offline = detector.detect(capture)

        bare = start_in_thread(
            detector, GatewayConfig(num_shards=2, worker_mode=mode)
        )
        try:
            bare_result = _replay(bare, capture)
        finally:
            bare.stop()

        tracer = Tracer(TraceConfig(sample_every=SAMPLE_EVERY))
        traced = start_in_thread(
            detector,
            GatewayConfig(num_shards=2, worker_mode=mode),
            tracer=tracer,
        )
        try:
            traced_result = _replay(traced, capture)
            stats = traced.stats()
        finally:
            traced.stop()

        # The tracer saw packages but never touched a verdict.
        for result in (bare_result, traced_result):
            assert np.array_equal(result.anomalies, offline.is_anomaly)
            assert np.array_equal(result.levels, offline.level)

        expected = _expected_samples(tracer, "plant", range(len(capture)))
        assert expected, "sampling selected nothing — test is vacuous"
        tstats = stats["tracing"]
        assert tstats["spans_started"] == len(expected)
        assert tstats["spans_finished"] == len(expected)
        spans = tracer.recent(limit=len(capture))
        assert {span["seq"] for span in spans} == expected
        want = THREAD_STAGES if mode == "thread" else PROCESS_STAGES
        for span in spans:
            assert set(span["stages"]) == want, span
            assert all(v >= 0.0 for v in span["stages"].values()), span
            assert span["total_seconds"] == pytest.approx(
                sum(span["stages"].values())
            )


class TestKillResumeDeterminism:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_trace_ids_identical_across_kill_and_resume(
        self, mode, tmp_path, detector, capture
    ):
        half = len(capture) // 2

        # Reference: one uninterrupted traced replay.
        ref_export = tmp_path / "ref.jsonl"
        tracer = Tracer(
            TraceConfig(sample_every=SAMPLE_EVERY, export_path=str(ref_export))
        )
        handle = start_in_thread(
            detector,
            GatewayConfig(num_shards=2, worker_mode=mode),
            tracer=tracer,
        )
        try:
            _replay(handle, capture)
        finally:
            handle.stop()
            tracer.close()

        # Kill+resume: half the capture, a checkpoint "crash", then a
        # *fresh* tracer on the restored gateway — no tracer state rides
        # the checkpoint, sampling is (stream, seq)-seeded.
        export = tmp_path / "resumed.jsonl"
        checkpoint = tmp_path / "gw.npz"
        tracer1 = Tracer(
            TraceConfig(sample_every=SAMPLE_EVERY, export_path=str(export))
        )
        handle = start_in_thread(
            detector,
            GatewayConfig(
                num_shards=2,
                worker_mode=mode,
                checkpoint_path=str(checkpoint),
            ),
            tracer=tracer1,
        )
        try:
            _replay(handle, capture[:half])
        finally:
            handle.stop(checkpoint=True)
            tracer1.close()

        tracer2 = Tracer(
            TraceConfig(sample_every=SAMPLE_EVERY, export_path=str(export))
        )
        restored = DetectionGateway.from_checkpoint(
            str(checkpoint), detector=detector, tracer=tracer2
        )
        handle = start_in_thread(None, gateway=restored)
        try:
            resumed = _replay(handle, capture)
            assert resumed.start == half  # nothing re-judged, nothing re-traced
        finally:
            handle.stop()
            tracer2.close()

        def spans_of(path):
            return {
                (rec["stream"], rec["seq"]): rec["trace_id"]
                for rec in map(json.loads, path.read_text().splitlines())
            }

        reference, stitched = spans_of(ref_export), spans_of(export)
        assert stitched == reference
        assert len(reference) == len(
            _expected_samples(tracer, "plant", range(len(capture)))
        )


class TestTracesOverHttp:
    def test_traces_endpoints_serve_the_store(self, detector, capture):
        metrics = MetricsRegistry()
        tracer = Tracer(TraceConfig(sample_every=SAMPLE_EVERY), metrics=metrics)
        handle = start_in_thread(
            detector,
            GatewayConfig(num_shards=2),
            metrics=metrics,
            tracer=tracer,
        )
        obs = start_obs_in_thread(
            ObsServer(gateway=handle.gateway, metrics=metrics)
        )
        try:
            _replay(handle, capture)
            host, port = obs.address

            def get(path):
                with urllib.request.urlopen(
                    f"http://{host}:{port}{path}", timeout=5
                ) as resp:
                    return json.loads(resp.read())

            recent = get("/traces/recent?limit=5")
            assert recent["count"] == len(recent["spans"]) == 5
            assert all(span["trace_id"] for span in recent["spans"])

            slowest = get("/traces/slowest")
            assert slowest["slowest"], "no exemplars retained"
            rows = [row["seconds"] for row in slowest["slowest"]]
            assert rows == sorted(rows, reverse=True)
            assert {row["stage"] for row in slowest["slowest"]} <= THREAD_STAGES

            # The stage histograms made it to the exposition too.
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as resp:
                assert b"trace_stage_seconds" in resp.read()

            # Satellite: malformed params are a 400 JSON error body,
            # never a 500 traceback — over a real socket.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get("/traces/recent?limit=abc")
            assert excinfo.value.code == 400
            assert excinfo.value.headers["Content-Type"].startswith(
                "application/json"
            )
            body = json.loads(excinfo.value.read())
            assert body["status"] == 400 and "limit" in body["error"]
        finally:
            obs.stop()
            handle.stop()

    def test_traces_404_without_a_tracer(self, detector, capture):
        handle = start_in_thread(detector, GatewayConfig(num_shards=1))
        obs = start_obs_in_thread(ObsServer(gateway=handle.gateway))
        try:
            host, port = obs.address
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/traces/recent", timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            obs.stop()
            handle.stop()


class TestTraceCli:
    def test_aggregates_export_offline(self, tmp_path, detector, capture, capsys):
        export = tmp_path / "spans.jsonl"
        tracer = Tracer(
            TraceConfig(sample_every=SAMPLE_EVERY, export_path=str(export))
        )
        handle = start_in_thread(
            detector, GatewayConfig(num_shards=2), tracer=tracer
        )
        try:
            _replay(handle, capture)
        finally:
            handle.stop()
            tracer.close()

        out = tmp_path / "trace.json"
        assert (
            main(["trace", "--spans", str(export), "--json", str(out)]) == 0
        )
        payload = json.loads(out.read_text())
        expected = _expected_samples(tracer, "plant", range(len(capture)))
        assert payload["spans"] == len(expected)
        assert set(payload["stages"]) == THREAD_STAGES
        assert sum(
            row["share"] for row in payload["stages"].values()
        ) == pytest.approx(1.0)
        assert payload["total_p99_seconds"] >= payload["total_p50_seconds"] > 0
        printed = capsys.readouterr().out
        assert "span(s)" in printed and "queue" in printed

    def test_rejects_garbage_export(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit, match="bad.jsonl:1"):
            main(["trace", "--spans", str(bad)])
