"""Fleet serving: concurrent multi-scenario sites through one gateway."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.fleet import FleetConfig, FleetRunner, SiteSpec


class TestFleetConfig:
    def test_round_robin_site_roster(self):
        config = FleetConfig(
            num_sites=5, scenarios=("gas_pipeline", "water_tank")
        )
        sites = config.sites()
        assert [site.scenario for site in sites] == [
            "gas_pipeline", "water_tank", "gas_pipeline", "water_tank",
            "gas_pipeline",
        ]
        assert len({site.name for site in sites}) == 5
        assert len({site.seed for site in sites}) == 5

    def test_defaults_to_all_registered_scenarios(self):
        from repro.scenarios import scenario_names

        sites = FleetConfig(num_sites=6).sites()
        assert {site.scenario for site in sites} == set(scenario_names())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sites": 0},
            {"cycles_per_site": 0},
            {"num_shards": 0},
            {"window": 0},
            {"driver": "greenlets"},
            {"worker_mode": "fork"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs).validate()

    def test_auto_driver_switches_on_fleet_size(self):
        from repro.serve.fleet import AUTO_ASYNC_THRESHOLD

        at = FleetConfig(num_sites=AUTO_ASYNC_THRESHOLD)
        above = FleetConfig(num_sites=AUTO_ASYNC_THRESHOLD + 1)
        assert at.effective_driver() == "threads"
        assert above.effective_driver() == "async"
        # Explicit choices are never overridden.
        assert FleetConfig(num_sites=100, driver="threads").effective_driver() \
            == "threads"
        assert FleetConfig(num_sites=2, driver="async").effective_driver() \
            == "async"

    def test_site_capture_is_deterministic(self):
        spec = SiteSpec(name="s", scenario="water_tank", seed=9, num_cycles=20)
        assert spec.capture() == spec.capture()

    def test_site_capture_matches_dataset_generation(self):
        # Same rng plumbing as generate_dataset: a site capture equals
        # that dataset's raw stream for the same scenario/seed/cycles.
        from repro.ics.dataset import generate_dataset
        from repro.scenarios import get_scenario

        spec = SiteSpec(name="s", scenario="power_feeder", seed=4, num_cycles=20)
        dataset = generate_dataset(
            get_scenario("power_feeder").dataset_config(num_cycles=20), seed=4
        )
        assert spec.capture() == dataset.all_packages

    def test_tiny_sites_are_streamable(self):
        # Live sites have no train/test split, so the offline split's
        # minimum-size rule must not apply to fleet captures.
        spec = SiteSpec(name="s", scenario="gas_pipeline", seed=0, num_cycles=2)
        assert len(spec.capture()) >= 8


class TestFleetRunner:
    @pytest.fixture(scope="class")
    def result(self, detector):
        config = FleetConfig(
            num_sites=4,
            scenarios=("gas_pipeline", "water_tank", "power_feeder"),
            cycles_per_site=25,
            num_shards=2,
            base_seed=1,
            verify_offline=True,
        )
        return FleetRunner(detector, config).run()

    def test_all_sites_complete(self, result):
        assert len(result.sites) == 4
        assert result.all_complete
        assert result.total_packages == sum(s.packages for s in result.sites)
        assert result.total_packages > 0
        assert result.packages_per_second > 0

    def test_streams_multiple_scenarios_concurrently(self, result):
        assert len(result.scenarios_streamed) >= 2

    def test_gateway_saw_every_stream(self, result):
        assert result.gateway_stats["streams"] == 4
        assert result.gateway_stats["processed"] == result.total_packages

    def test_verdicts_bit_identical_to_offline_detect(self, result):
        """The acceptance drill: every site's gateway verdicts equal the
        offline ``detect()`` pass over the same capture, bit for bit."""
        for site in result.sites:
            assert site.matches_offline is True, site.spec.name

    def test_site_verdict_arrays_consistent(self, result):
        for site in result.sites:
            assert len(site.anomalies) == site.packages
            assert len(site.levels) == site.packages
            # Anomalous packages carry a level tag.
            assert np.all(site.levels[site.anomalies] > 0)

    def test_verification_skipped_when_not_requested(self, detector):
        config = FleetConfig(
            num_sites=2,
            scenarios=("water_tank",),
            cycles_per_site=15,
            num_shards=1,
            verify_offline=False,
        )
        result = FleetRunner(detector, config).run()
        assert result.all_complete
        assert all(site.matches_offline is None for site in result.sites)
        assert result.all_match_offline  # None counts as "not refuted"

    def test_runner_requires_exactly_one_model_source(self, detector, registry):
        with pytest.raises(ValueError):
            FleetRunner()
        with pytest.raises(ValueError):
            FleetRunner(detector, registry=registry)


class TestFleetScaleOut:
    def test_hundred_sites_on_the_async_driver(self, detector):
        """The load-harness acceptance drill: 100 concurrent sites on
        one event loop, every verdict still bit-identical to offline."""
        config = FleetConfig(
            num_sites=100,
            scenarios=("gas_pipeline",),
            cycles_per_site=2,
            num_shards=2,
            verify_offline=True,
        )
        assert config.effective_driver() == "async"
        result = FleetRunner(detector, config).run()
        assert len(result.sites) == 100
        assert result.all_complete
        assert result.all_match_offline
        assert result.gateway_stats["streams"] == 100
        assert result.gateway_stats["processed"] == result.total_packages

    def test_async_and_thread_drivers_agree(self, detector):
        """Same fleet, both concurrency models: identical verdicts."""
        base = dict(
            num_sites=3,
            scenarios=("gas_pipeline",),
            cycles_per_site=10,
            num_shards=2,
        )
        by_driver = {}
        for driver in ("threads", "async"):
            result = FleetRunner(
                detector, FleetConfig(driver=driver, **base)
            ).run()
            assert result.all_complete
            by_driver[driver] = result
        for a, b in zip(
            by_driver["threads"].sites, by_driver["async"].sites
        ):
            assert a.spec.name == b.spec.name
            assert np.array_equal(a.anomalies, b.anomalies)
            assert np.array_equal(a.levels, b.levels)

    def test_latency_recording_yields_fleet_percentiles(self, detector):
        config = FleetConfig(
            num_sites=2,
            scenarios=("gas_pipeline",),
            cycles_per_site=5,
            num_shards=1,
            driver="async",
            record_latency=True,
        )
        result = FleetRunner(detector, config).run()
        assert result.all_complete
        for site in result.sites:
            assert site.latencies is not None
            assert len(site.latencies) == site.packages
            assert np.all(site.latencies >= 0)
        percentiles = result.latency_percentiles()
        assert percentiles is not None
        assert 0 <= percentiles["p50_ms"] <= percentiles["p99_ms"]

    def test_no_latencies_without_recording(self, detector):
        config = FleetConfig(
            num_sites=1,
            scenarios=("gas_pipeline",),
            cycles_per_site=5,
            num_shards=1,
        )
        result = FleetRunner(detector, config).run()
        assert all(site.latencies is None for site in result.sites)
        assert result.latency_percentiles() is None

    def test_process_worker_mode_fleet(self, detector):
        """Fleet over the multi-process gateway backend: async sites in
        front, engine workers behind, verdicts still bit-identical."""
        config = FleetConfig(
            num_sites=20,
            scenarios=("gas_pipeline",),
            cycles_per_site=2,
            num_shards=2,
            driver="async",
            worker_mode="process",
            verify_offline=True,
        )
        result = FleetRunner(detector, config).run()
        assert result.all_complete
        assert result.all_match_offline
        assert result.gateway_stats["streams"] == 20


class TestHeterogeneousFleet:
    @pytest.fixture(scope="class")
    def result(self, class_registry):
        # >= 4 scenarios, one site each: the acceptance drill — every
        # site verified bit-identical against its *own* scenario's
        # registry artifact.
        config = FleetConfig(
            num_sites=4,
            cycles_per_site=25,
            num_shards=2,
            base_seed=2,
            verify_offline=True,
        )
        return FleetRunner(config=config, registry=class_registry).run()

    @pytest.fixture(scope="class")
    def class_registry(self, registry_root):
        from repro.registry import ModelRegistry

        return ModelRegistry(registry_root)

    def test_covers_four_scenarios(self, result):
        assert len(result.scenarios_streamed) >= 4
        assert result.heterogeneous
        assert result.gateway_stats["mode"] == "registry"

    def test_every_site_matches_its_own_artifact(self, result):
        assert result.all_complete
        for site in result.sites:
            assert site.matches_offline is True, site.spec.name
            assert site.route_scenario == site.spec.scenario
            assert site.route_version == 1

    def test_gateway_pooled_one_engine_per_scenario(self, result):
        routes = {
            route
            for shard in result.gateway_stats["shards"]
            for route in shard
        }
        assert routes == {
            f"{site.spec.scenario}@1" for site in result.sites
        }

    def test_untagged_fleet_is_auto_identified(self, class_registry):
        config = FleetConfig(
            num_sites=2,
            scenarios=("water_tank", "hvac_chiller"),
            cycles_per_site=20,
            num_shards=1,
            verify_offline=True,
            tag_streams=False,
        )
        result = FleetRunner(config=config, registry=class_registry).run()
        assert result.all_complete and result.all_match_offline
        assert result.gateway_stats["identified"] == 2

    def test_missing_scenario_fails_before_streaming(
        self, tmp_path, scenario_detectors
    ):
        from repro.registry import ModelRegistry, RegistryError

        partial = ModelRegistry(tmp_path / "partial")
        partial.publish(scenario_detectors["gas_pipeline"], "gas_pipeline")
        config = FleetConfig(
            num_sites=2,
            scenarios=("gas_pipeline", "water_tank"),
            cycles_per_site=15,
        )
        with pytest.raises(RegistryError, match="water_tank"):
            FleetRunner(config=config, registry=partial).run()
