"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail; this file enables ``pip install -e . --no-use-pep517``.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
