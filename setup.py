"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail; this file enables ``pip install -e . --no-use-pep517``.
All real metadata — including the ``repro`` console-script entry point —
lives in ``pyproject.toml``; setuptools >= 61 reads it from there.  The
entry point is repeated here only so the legacy (--no-use-pep517) path
installs the command too.
"""

from setuptools import setup

setup(entry_points={"console_scripts": ["repro = repro.cli:main"]})
