"""Incident-plane benchmarks: correlator storm throughput and the
price of the incident/drift monitors on the serving hot path.

Two questions, one file:

1. **Can the correlator keep up with an alert storm?**  A synthetic
   1000-stream storm is folded through a bare
   :class:`IncidentCorrelator` — the grouping arithmetic must run far
   above any alert rate the gateway can emit, and the incident count
   it produces is exactly predictable from the storm's shape.
2. **Do the monitors slow serving down?**  The same concurrent replay
   is driven through a gateway with the incident plane disabled and
   one with correlator + drift monitors attached, interleaved
   best-of-N to cancel machine noise.  The instrumented run must stay
   within ``MAX_OVERHEAD`` of bare throughput — and, the incident
   plane being a *pure observer*, its verdicts must be bit-identical.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_incidents.py -s
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.obs.incidents import CorrelatorConfig, IncidentCorrelator
from repro.serve.alerts import Alert, AlertConfig, AlertPipeline, Severity
from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

#: The incident plane may cost at most this fraction of bare pkg/s.
MAX_OVERHEAD = 0.05

#: profile -> (storm alerts, storm streams, clients, pkgs/client, repeats)
SIZES = {
    "ci": (100_000, 1000, 4, 400, 5),
    "default": (250_000, 1000, 8, 600, 5),
    "paper": (600_000, 2000, 16, 800, 7),
}

SCENARIOS = tuple(f"scenario-{i}" for i in range(10))


def _sizes(profile):
    return SIZES.get(profile, SIZES["default"])


def _storm(alerts, streams):
    """A storm of ``alerts`` across ``streams`` keys, shaped as bursts:
    every burst sweeps all scenarios inside one correlation window,
    then goes quiet long enough to resolve — so the expected incident
    count is exactly ``bursts * len(SCENARIOS)``."""
    config = CorrelatorConfig(window=30.0, resolve_after=60.0)
    per_burst = 10_000
    bursts = max(1, alerts // per_burst)
    out = []
    for burst in range(bursts):
        base = burst * 1000.0  # inter-burst gap >> resolve_after
        for i in range(per_burst):
            out.append(
                Alert(
                    stream=f"plant-{(burst * 7 + i) % streams:04d}",
                    seq=burst * per_burst + i,
                    time=base + (i % 300) * 0.1,  # burst spans 29.9s
                    level=1 + i % 2,
                    severity=Severity.HIGH if i % 3 else Severity.CRITICAL,
                    escalated=False,
                    repeats=0,
                    label=1,
                    scenario=SCENARIOS[i % len(SCENARIOS)],
                    version=1 + (i // len(SCENARIOS)) % 2,
                )
            )
    # Distinct (scenario, version) routes double the per-burst count.
    expected = bursts * len(SCENARIOS) * 2
    return config, out, expected


def test_correlator_storm_throughput(profile):
    alerts, streams, *_ = _sizes(profile)
    config, storm, expected = _storm(alerts, streams)
    correlator = IncidentCorrelator(config)

    started = time.perf_counter()
    for alert in storm:
        correlator.observe(alert)
    elapsed = time.perf_counter() - started

    stats = correlator.stats()
    rate = len(storm) / elapsed
    results = {
        "profile": profile,
        "alerts": len(storm),
        "streams": streams,
        "alerts_per_sec": rate,
        "incidents_opened": stats["opened_total"],
        "incidents_expected": expected,
        "open": stats["open"],
    }
    emit_report(
        "incidents_bench",
        f"{'alerts':>10}{'streams':>9}{'alerts/s':>12}{'incidents':>11}\n"
        f"{len(storm):>10}{streams:>9}{rate:>12.0f}"
        f"{stats['opened_total']:>11}",
    )
    emit_json("incidents_bench", results)
    # Incident-count sanity: the storm's shape fixes the answer.
    assert stats["opened_total"] == expected, results
    assert stats["alerts_absorbed"] == len(storm), results
    # Orders of magnitude above any alert rate the gateway can emit.
    assert rate > 20_000, results


def _train(profile):
    *_, clients, per_client, repeats = _sizes(profile)
    dataset = generate_dataset(DatasetConfig(num_cycles=900), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=(24,), epochs=1)
        ),
        rng=7,
    )
    packages = dataset.test_packages
    slices = [
        [packages[(i * 53 + t) % len(packages)] for t in range(per_client)]
        for i in range(clients)
    ]
    return detector, slices, repeats


def _drive(handle, slices):
    host, port = handle.address
    results = [None] * len(slices)

    def run(i):
        results[i] = ReplayClient(
            host, port, stream_key=f"bench-{i}", window=64
        ).replay(slices[i])

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(slices))
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert all(r is not None and r.complete for r in results)
    verdicts = [(r.anomalies.tolist(), r.levels.tolist()) for r in results]
    return verdicts, elapsed


def test_incident_plane_overhead(profile):
    detector, slices, repeats = _train(profile)
    total = sum(len(s) for s in slices)

    def run_once(with_plane):
        gateway = DetectionGateway(
            detector,
            GatewayConfig(num_shards=2, max_pending=512),
            AlertPipeline(config=AlertConfig()),
            incidents=None if with_plane else False,
            monitors=None if with_plane else False,
        )
        handle = start_in_thread(None, gateway=gateway)
        try:
            verdicts, elapsed = _drive(handle, slices)
            assert handle.stats()["processed"] == total
        finally:
            handle.stop()
        if with_plane:
            # The plane really ran: every package passed the monitors.
            drift = gateway.stats()["drift"]
            assert sum(
                s["packages"] for s in drift["streams"].values()
            ) == total
        return verdicts, total / elapsed

    reference, _ = run_once(False)  # discard: cold caches

    bare, instrumented, ratios = [], [], []

    def run_round():
        for repeat in range(repeats):
            # Back-to-back pairs in alternating order: each pair shares
            # one noise window, so the per-pair ratio cancels machine
            # drift the absolute rates cannot.
            order = (False, True) if repeat % 2 == 0 else (True, False)
            pair = {}
            for with_plane in order:
                verdicts, pps = run_once(with_plane)
                assert verdicts == reference, (
                    "the incident plane changed verdicts — it must be "
                    "a pure observer"
                )
                (instrumented if with_plane else bare).append(pps)
                pair[with_plane] = pps
            ratios.append(pair[True] / pair[False])

    def estimate():
        # Same two-estimator gate as the historian bench: noise only
        # lowers single samples, so peak-vs-peak and the median paired
        # ratio both converge on the true cost — take the kinder one.
        ordered = sorted(ratios)
        paired = 1.0 - ordered[len(ordered) // 2]
        peak = 1.0 - max(instrumented) / max(bare)
        return peak, paired, min(peak, paired)

    overhead_peak = overhead_paired = overhead = 1.0
    for _ in range(3):
        run_round()
        overhead_peak, overhead_paired, overhead = estimate()
        if overhead <= MAX_OVERHEAD:
            break
    results = {
        "profile": profile,
        "packages": total,
        "repeats": repeats,
        "bare_pkg_per_sec": bare,
        "instrumented_pkg_per_sec": instrumented,
        "best_bare": max(bare),
        "best_instrumented": max(instrumented),
        "paired_ratios": ratios,
        "overhead_peak": overhead_peak,
        "overhead_paired": overhead_paired,
        "overhead_fraction": overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    emit_report(
        "monitors_overhead",
        f"{'config':>14}{'best pkg/s':>12}\n"
        f"{'bare':>14}{max(bare):>12.0f}\n"
        f"{'incident plane':>14}{max(instrumented):>12.0f}\n"
        f"overhead: peak {overhead_peak * 100:.2f}%, paired "
        f"{overhead_paired * 100:.2f}% (gate {MAX_OVERHEAD * 100:.0f}%)",
    )
    emit_json("monitors_overhead", results)
    assert overhead <= MAX_OVERHEAD, results
