"""End-to-end serving throughput: packages/sec vs worker count and mode.

Unlike :mod:`bench_stream_throughput` (pure engine math), this drives
the whole online path over real loopback sockets: MBAP framing, the
incremental decoder, sharded engine workers, verdict frames back, and
the alert pipeline.  N replay clients stream concurrently; the metrics
are end-to-end packages/sec from first byte to last verdict plus
p50/p99 per-package latency (send to verdict).

Two shard backends race on the same load (see
:attr:`repro.serve.gateway.GatewayConfig.worker_mode`):

- ``thread`` — engines inline on the event loop.  Every LSTM step of
  every shard contends for one GIL, so adding shards *loses*
  throughput past the batching knee.
- ``process`` — one OS process per shard.  Engine compute runs truly
  in parallel; throughput should rise with worker count up to the core
  count of the machine.

The bench cross-checks bit-identity between the backends on every
configuration — a faster verdict is worthless if it is a different
verdict — and asserts the scaling shape only when the host actually
has the cores for it (``os.cpu_count() >= 4``).

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_serve_throughput.py -s
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.serve.alerts import AlertConfig, AlertPipeline
from repro.serve.gateway import GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

WORKER_MODES = ("thread", "process")

#: profile -> (dataset cycles, hidden sizes, clients, packages per
#: client, worker counts)
SIZES = {
    "ci": (900, (24,), 4, 150, (1, 2, 4)),
    "default": (2000, (64, 64), 8, 250, (1, 2, 4, 8)),
    "paper": (5000, (256, 256), 16, 250, (1, 2, 4, 8)),
}


def _train_detector(profile: str):
    cycles, hidden_sizes, clients, per_client, counts = SIZES.get(
        profile, SIZES["default"]
    )
    dataset = generate_dataset(DatasetConfig(num_cycles=cycles), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=hidden_sizes, epochs=2)
        ),
        rng=7,
    )
    return detector, dataset, clients, per_client, counts


def _drive(handle, slices):
    """Stream every client slice concurrently; return per-client results."""
    host, port = handle.address
    results = [None] * len(slices)

    def run(i):
        client = ReplayClient(
            host, port, stream_key=f"bench-{i}", window=64, record_latency=True
        )
        results[i] = client.replay(slices[i])

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(slices))
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert all(r is not None and r.complete for r in results), (
        "a replay client did not finish"
    )
    return results, elapsed


def test_serve_throughput(profile):
    detector, dataset, num_clients, per_client, counts = _train_detector(profile)
    packages = dataset.test_packages
    slices = [
        [packages[(i * 53 + t) % len(packages)] for t in range(per_client)]
        for i in range(num_clients)
    ]
    total = num_clients * per_client

    rows = []
    results = {
        "profile": profile,
        "clients": num_clients,
        "packages_per_client": per_client,
        "cpu_count": os.cpu_count(),
        "modes": {mode: {} for mode in WORKER_MODES},
    }
    reference = None  # thread@first-count verdicts: the bit-identity bar
    for mode in WORKER_MODES:
        for num_workers in counts:
            handle = start_in_thread(
                detector,
                GatewayConfig(
                    num_shards=num_workers,
                    max_pending=512,
                    worker_mode=mode,
                ),
                # Silent pipeline: alert dedup work still runs, nothing
                # prints.
                AlertPipeline(config=AlertConfig()),
            )
            try:
                replays, elapsed = _drive(handle, slices)
                stats = handle.stats()
                assert stats["processed"] == total
            finally:
                handle.stop()

            verdicts = [
                (r.anomalies.tolist(), r.levels.tolist()) for r in replays
            ]
            if reference is None:
                reference = verdicts
            else:
                assert verdicts == reference, (
                    f"{mode}@{num_workers} diverged from the reference "
                    "backend's verdicts"
                )

            latencies = np.concatenate([r.latencies for r in replays])
            p50 = float(np.percentile(latencies, 50) * 1e3)
            p99 = float(np.percentile(latencies, 99) * 1e3)
            pps = total / elapsed
            ticks = sum(s.get("ticks", 0) for s in stats["shards"])
            mean_batch = total / ticks if ticks else 0.0
            rows.append(
                f"{mode:>8}{num_workers:>9}{pps:>12.0f}{mean_batch:>12.2f}"
                f"{p50:>10.1f}{p99:>10.1f}{stats['alerts']['emitted']:>9}"
            )
            results["modes"][mode][str(num_workers)] = {
                "packages_per_sec": pps,
                "mean_batch_rows_per_tick": mean_batch,
                "latency_p50_ms": p50,
                "latency_p99_ms": p99,
                "alerts_emitted": stats["alerts"]["emitted"],
                "seconds": elapsed,
            }

    table = "\n".join(
        [
            f"{'mode':>8}{'workers':>9}{'pkg/s':>12}{'rows/tick':>12}"
            f"{'p50 ms':>10}{'p99 ms':>10}{'alerts':>9}"
        ]
        + rows
    )
    emit_report("serve_throughput", table)
    emit_json("serve_throughput", results)

    # The gateway must sustain real-time SCADA rates with huge headroom
    # in *every* configuration: the testbed polls at ~4 packages/sec per
    # link.
    slowest = min(
        entry["packages_per_sec"]
        for per_mode in results["modes"].values()
        for entry in per_mode.values()
    )
    assert slowest > 100.0, table

    # The scaling shape is only meaningful with real cores to scale
    # onto; single-core CI runners still get the bit-identity and
    # absolute-rate checks above.
    if (os.cpu_count() or 1) >= 4:
        process = results["modes"]["process"]
        curve = [
            process[str(n)]["packages_per_sec"] for n in counts if n <= 4
        ]
        assert all(a < b for a, b in zip(curve, curve[1:])), (
            f"process-mode throughput must rise 1->4 workers, got {curve}"
        )
        thread_peak = max(
            e["packages_per_sec"] for e in results["modes"]["thread"].values()
        )
        assert max(curve) >= 2.0 * thread_peak, (
            f"process peak {max(curve):.0f} pkg/s < 2x thread peak "
            f"{thread_peak:.0f} pkg/s"
        )
