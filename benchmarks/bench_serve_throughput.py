"""End-to-end serving throughput: packages/sec vs shard count.

Unlike :mod:`bench_stream_throughput` (pure engine math), this drives
the whole online path over real loopback sockets: MBAP framing, the
incremental decoder, sharded engine workers, verdict frames back, and
the alert pipeline.  N replay clients stream concurrently; the metric
is end-to-end packages/sec from first byte to last verdict.

Sharding spreads sessions across engine workers; each worker still
advances all of its ready streams with one batched LSTM step per tick,
so more shards trade batching width for parallel queues — the
interesting question is where the crossover sits for a given model
size, which is exactly what the emitted table shows.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_serve_throughput.py -s
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.serve.alerts import AlertConfig, AlertPipeline
from repro.serve.gateway import GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

SHARD_COUNTS = (1, 2, 4)

#: profile -> (dataset cycles, hidden sizes, clients, packages per client)
SIZES = {
    "ci": (900, (24,), 4, 150),
    "default": (2000, (64, 64), 8, 250),
    "paper": (5000, (256, 256), 16, 250),
}


def _train_detector(profile: str):
    cycles, hidden_sizes, clients, per_client = SIZES.get(profile, SIZES["default"])
    dataset = generate_dataset(DatasetConfig(num_cycles=cycles), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=hidden_sizes, epochs=2)
        ),
        rng=7,
    )
    return detector, dataset, clients, per_client


def test_serve_throughput(profile):
    detector, dataset, num_clients, per_client = _train_detector(profile)
    packages = dataset.test_packages
    slices = [
        [packages[(i * 53 + t) % len(packages)] for t in range(per_client)]
        for i in range(num_clients)
    ]
    total = num_clients * per_client

    rows = []
    results = {
        "profile": profile,
        "clients": num_clients,
        "packages_per_client": per_client,
        "shards": {},
    }
    for num_shards in SHARD_COUNTS:
        handle = start_in_thread(
            detector,
            GatewayConfig(num_shards=num_shards, max_pending=512),
            # Silent pipeline: alert dedup work still runs, nothing prints.
            AlertPipeline(config=AlertConfig()),
        )
        try:
            host, port = handle.address
            complete = [False] * num_clients

            def run(i):
                client = ReplayClient(
                    host, port, stream_key=f"bench-{i}", window=64
                )
                complete[i] = client.replay(slices[i]).complete

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(num_clients)
            ]
            started = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - started
            assert all(complete), "a replay client did not finish"
            stats = handle.stats()
            assert stats["processed"] == total
        finally:
            handle.stop()

        pps = total / elapsed
        ticks = sum(s["ticks"] for s in stats["shards"])
        mean_batch = total / ticks if ticks else 0.0
        rows.append(
            f"{num_shards:>7}{pps:>14.0f}{mean_batch:>12.2f}"
            f"{stats['alerts']['emitted']:>10}"
        )
        results["shards"][str(num_shards)] = {
            "packages_per_sec": pps,
            "mean_batch_rows_per_tick": mean_batch,
            "alerts_emitted": stats["alerts"]["emitted"],
            "seconds": elapsed,
        }

    table = "\n".join(
        [f"{'shards':>7}{'pkg/s':>14}{'rows/tick':>12}{'alerts':>10}"] + rows
    )
    emit_report("serve_throughput", table)
    emit_json("serve_throughput", results)

    # The gateway must sustain real-time SCADA rates with huge headroom:
    # the testbed polls at ~4 packages/sec per link.
    slowest = min(r["packages_per_sec"] for r in results["shards"].values())
    assert slowest > 100.0, table
