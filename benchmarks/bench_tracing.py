"""Tracing-plane benchmark: the price of per-package spans on the
serving hot path.

The same concurrent replay is driven through a bare gateway and
through one carrying a :class:`~repro.obs.tracing.Tracer` at its
default sampling rate, interleaved best-of-N to cancel machine noise.
The traced run must stay within ``MAX_OVERHEAD`` of bare throughput —
and, tracing being a *pure observer*, its verdicts must be
bit-identical.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_tracing.py -s
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.obs import MetricsRegistry, TraceConfig, Tracer
from repro.serve.gateway import GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

#: Traced serving may cost at most this fraction of bare pkg/s.
MAX_OVERHEAD = 0.05

#: profile -> (clients, packages/client, repeats)
SIZES = {
    "ci": (4, 500, 5),
    "default": (8, 600, 5),
    "paper": (16, 800, 7),
}


def _sizes(profile):
    return SIZES.get(profile, SIZES["default"])


def _train(profile):
    clients, per_client, repeats = _sizes(profile)
    dataset = generate_dataset(DatasetConfig(num_cycles=900), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=(24,), epochs=1)
        ),
        rng=7,
    )
    packages = dataset.test_packages
    slices = [
        [packages[(i * 53 + t) % len(packages)] for t in range(per_client)]
        for i in range(clients)
    ]
    return detector, slices, repeats


def _drive(handle, slices):
    host, port = handle.address
    results = [None] * len(slices)

    def run(i):
        results[i] = ReplayClient(
            host, port, stream_key=f"bench-{i}", window=64
        ).replay(slices[i])

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(slices))
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert all(r is not None and r.complete for r in results)
    verdicts = [(r.anomalies.tolist(), r.levels.tolist()) for r in results]
    return verdicts, elapsed


def test_tracing_overhead(profile):
    detector, slices, repeats = _train(profile)
    total = sum(len(s) for s in slices)
    config = TraceConfig()  # default sampling: what users actually pay

    def run_once(traced):
        tracer = None
        if traced:
            tracer = Tracer(config, metrics=MetricsRegistry())
        handle = start_in_thread(
            detector,
            GatewayConfig(num_shards=2, max_pending=512),
            tracer=tracer,
        )
        try:
            verdicts, elapsed = _drive(handle, slices)
            assert handle.stats()["processed"] == total
        finally:
            handle.stop()
        if tracer is not None:
            stats = tracer.stats()
            # Every sampled package must have finished its span.
            assert stats["spans_finished"] == stats["spans_started"] > 0
            tracer.close()
        return verdicts, total / elapsed

    reference, _ = run_once(False)  # discard: cold caches

    bare, traced, ratios = [], [], []

    def run_round():
        for repeat in range(repeats):
            # Back-to-back pairs in alternating order: each pair shares
            # one noise window, so the per-pair ratio cancels machine
            # drift the absolute rates cannot.
            order = (False, True) if repeat % 2 == 0 else (True, False)
            pair = {}
            for with_tracing in order:
                verdicts, pps = run_once(with_tracing)
                assert verdicts == reference, (
                    "tracing changed verdicts — it must be a pure observer"
                )
                (traced if with_tracing else bare).append(pps)
                pair[with_tracing] = pps
            ratios.append(pair[True] / pair[False])

    def estimate():
        # Two estimators, both of which converge on the true cost as
        # samples grow while run-to-run noise only *lowers* single
        # samples: peak-vs-peak and the median paired ratio.  A real
        # regression moves both; noise rarely moves both the same way,
        # so the gate takes the kinder estimate.
        ordered = sorted(ratios)
        paired = 1.0 - ordered[len(ordered) // 2]
        peak = 1.0 - max(traced) / max(bare)
        return peak, paired, min(peak, paired)

    # Shared-machine noise here dwarfs a 5% signal on any single round;
    # escalate with more rounds until the estimate clears the gate or
    # stays bad three rounds running (a real regression is consistent,
    # a noise phase is not).
    overhead_peak = overhead_paired = overhead = 1.0
    for _ in range(3):
        run_round()
        overhead_peak, overhead_paired, overhead = estimate()
        if overhead <= MAX_OVERHEAD:
            break
    results = {
        "profile": profile,
        "packages": total,
        "repeats": repeats,
        "sample_every": config.sample_every,
        "bare_pkg_per_sec": bare,
        "traced_pkg_per_sec": traced,
        "best_bare": max(bare),
        "best_traced": max(traced),
        "paired_ratios": ratios,
        "overhead_peak": overhead_peak,
        "overhead_paired": overhead_paired,
        "overhead_fraction": overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    emit_report(
        "tracing_overhead",
        f"{'config':>14}{'best pkg/s':>12}\n"
        f"{'bare':>14}{max(bare):>12.0f}\n"
        f"{'traced':>14}{max(traced):>12.0f}\n"
        f"overhead: peak {overhead_peak * 100:.2f}%, paired "
        f"{overhead_paired * 100:.2f}% (gate {MAX_OVERHEAD * 100:.0f}%, "
        f"1/{config.sample_every} sampling)",
    )
    emit_json("tracing_overhead", results)
    assert overhead <= MAX_OVERHEAD, results
