"""Cold start from a saved artifact vs retraining from scratch.

The paper's deployment story (Fig. 3) trains offline and monitors
online; the persistence layer makes the trained framework a durable
artifact, so a monitor that restarts — fail-over, rolling deploy, crash
recovery — pays an artifact load instead of a full retrain.  This
benchmark measures both paths on the active profile, verifies the
loaded detector classifies bit-identically, and asserts the ≥10×
cold-start win the layer exists for.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_cold_start.py -s
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector
from repro.experiments.profiles import get_profile
from repro.ics.dataset import generate_dataset
from repro.persistence import load_detector, save_detector


def test_cold_start(profile, tmp_path):
    resolved = get_profile(profile)
    dataset = generate_dataset(resolved.dataset, seed=resolved.seed)

    started = time.perf_counter()
    detector, artifacts = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        resolved.detector,
        rng=resolved.seed,
    )
    train_seconds = time.perf_counter() - started

    path = tmp_path / "detector.npz"
    started = time.perf_counter()
    save_detector(detector, path, meta={"profile": profile})
    save_seconds = time.perf_counter() - started

    started = time.perf_counter()
    restored = load_detector(path)
    load_seconds = time.perf_counter() - started

    # The loaded detector must be the same detector, bit for bit.
    probe = dataset.test_packages[:200]
    original = detector.detect(probe)
    loaded = restored.detect(probe)
    np.testing.assert_array_equal(original.is_anomaly, loaded.is_anomaly)
    np.testing.assert_array_equal(original.level, loaded.level)

    speedup = train_seconds / load_seconds
    artifact_kb = path.stat().st_size / 1024
    rows = [
        f"{'train from scratch':<24}{train_seconds:>12.3f}s",
        f"{'save artifact':<24}{save_seconds:>12.3f}s",
        f"{'load artifact':<24}{load_seconds:>12.3f}s",
        f"{'cold-start speedup':<24}{speedup:>12.1f}x",
        f"{'artifact size':<24}{artifact_kb:>12.1f} KB",
        f"{'vocabulary size':<24}{artifacts.vocabulary_size:>13}",
    ]
    table = "\n".join([f"profile: {profile}"] + rows)
    emit_report("cold_start", table)
    emit_json(
        "cold_start",
        {
            "profile": profile,
            "train_seconds": train_seconds,
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
            "speedup": speedup,
            "artifact_kb": artifact_kb,
            "vocabulary_size": artifacts.vocabulary_size,
        },
    )

    # The deployment win the persistence layer exists for.
    assert speedup >= 10.0, table
