"""Regenerates paper Table IV: model comparison on the gas pipeline data.

Paper claim: the combined framework attains the best F1 (0.85); BF and
BN are the closest comparators (0.73); SVDD/IF/GMM/PCA-SVD trail badly.
Absolute values shift on the simulated capture, but the framework must
stay on top.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.experiments.comparison import run_comparison
from repro.experiments.reporting import format_table_iv


def test_table_iv_model_comparison(benchmark, profile):
    result = benchmark.pedantic(
        lambda: run_comparison(profile), rounds=1, iterations=1
    )
    emit_report("table_iv", format_table_iv(result.metrics))

    if profile == "ci":
        return  # shape assertions need at least the default scale

    measured = result.metrics
    framework_f1 = measured["Our framework"].f1_score
    # The headline claim: the combined framework wins on F1.
    for model, metrics in measured.items():
        if model != "Our framework":
            assert framework_f1 >= metrics.f1_score - 0.02, (
                f"framework F1 {framework_f1:.2f} not ahead of "
                f"{model} ({metrics.f1_score:.2f})"
            )
    # The unsupervised comparators trail the signature-based ones.
    assert measured["GMM"].f1_score < framework_f1
    assert measured["PCA-SVD"].f1_score < framework_f1
    # Everything achieves non-degenerate accuracy.
    assert measured["Our framework"].accuracy > 0.7
