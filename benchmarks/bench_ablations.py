"""Ablations of the framework's design choices (DESIGN.md §5).

Covers the knobs the paper motivates but does not sweep exhaustively:
Bloom-filter sizing vs its hash-collision FP rate, the baseline window
size (the "command-response cycle" claim), and the dynamic-k extension
from the paper's future-work list.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.baselines import WindowedBloomDetector, make_package_windows, window_label
from repro.core.bloom import BloomFilter
from repro.core.dynamic_k import DynamicKPolicy, rank_of
from repro.core.metrics import evaluate_detection
from repro.core.signatures import signature_of
from repro.experiments.pipeline import run_pipeline


def test_ablation_bloom_sizing(benchmark):
    """Bits-per-element vs realized hash-collision false positives."""

    def sweep():
        rows = []
        keys = [f"signature-{i}" for i in range(2000)]
        probes = [f"other-{i}" for i in range(20000)]
        for target_fpr in (0.1, 0.01, 0.001):
            bloom = BloomFilter.for_capacity(len(keys), target_fpr)
            bloom.update(keys)
            measured = sum(1 for p in probes if p in bloom) / len(probes)
            rows.append(
                f"target_fpr={target_fpr:<7} bits={bloom.num_bits:<8} "
                f"hashes={bloom.num_hashes:<3} measured_fpr={measured:.4f} "
                f"memory_kb={bloom.memory_bytes() / 1024:.1f}"
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_report("ablation_bloom_sizing", "\n".join(rows))


def test_ablation_window_size(benchmark, profile):
    """The 4-package cycle is the natural window for the BF baseline."""
    pipeline = run_pipeline(profile)
    dataset = pipeline.dataset

    def sweep():
        rows = []
        for size in (2, 4, 8):
            train = [
                w
                for f in dataset.train_fragments
                for w in make_package_windows(f, size)
            ]
            test = make_package_windows(dataset.test_packages, size)
            labels = np.array([window_label(w) for w in test])
            detector = WindowedBloomDetector(rng=pipeline.profile.seed)
            detector.fit(train)
            metrics = evaluate_detection(labels, detector.predict(test))
            rows.append((size, metrics))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"window={size}:  {metrics}" for size, metrics in rows
    ]
    emit_report("ablation_window_size", "\n".join(lines))


def test_ablation_dynamic_k(benchmark, profile):
    """Future-work extension: adapt k online from prediction ranks."""
    pipeline = run_pipeline(profile)
    detector = pipeline.detector
    vocabulary = detector.vocabulary
    discretizer = detector.discretizer
    validation = pipeline.dataset.validation_fragments[:20]

    def run_policy():
        policy = DynamicKPolicy(initial_k=detector.k)
        ks = []
        for fragment in validation:
            codes = discretizer.transform_sequence(fragment)
            state = detector.timeseries.new_stream()
            for vector in codes:
                if state.last_probs is not None:
                    identifier = vocabulary.id_of(signature_of(vector))
                    rank = (
                        None
                        if identifier is None
                        else rank_of(state.last_probs, identifier)
                    )
                    ks.append(policy.observe_rank(rank))
                _, state = detector.timeseries.observe(vector, state)
        return np.array(ks)

    ks = benchmark.pedantic(run_policy, rounds=1, iterations=1)
    lines = [
        f"fixed k (validation-chosen): {pipeline.artifacts.chosen_k}",
        f"dynamic k: mean={ks.mean():.2f}  min={ks.min()}  max={ks.max()}  "
        f"final={ks[-1]}",
    ]
    emit_report("ablation_dynamic_k", "\n".join(lines))
    assert ks.min() >= 1
