"""Throughput of the batched StreamEngine vs sequential StreamMonitors.

The combined detector of the paper monitors one package stream with
batch-size-1 LSTM steps; a SCADA front-end terminating N field-bus
links would need N sequential monitors.  :class:`StreamEngine` instead
advances all N streams with one batched LSTM step per tick.  This
benchmark measures packages/sec for N ∈ {1, 8, 32}, sequential vs
batched, and asserts the ≥5× batching win at N=32.

Training quality is irrelevant here (the data path does identical work
whatever the weights), so the detector is trained briefly; the model
*size* follows the profile since matmul width dominates the step cost.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_stream_throughput.py -s
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset

STREAM_COUNTS = (1, 8, 32)

#: profile -> (dataset cycles, hidden sizes, packages per stream)
SIZES = {
    "ci": (900, (24,), 120),
    "default": (2000, (64, 64), 200),
    "paper": (5000, (256, 256), 200),
}


def _train_detector(profile: str):
    cycles, hidden_sizes, ticks = SIZES.get(profile, SIZES["default"])
    dataset = generate_dataset(DatasetConfig(num_cycles=cycles), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=hidden_sizes, epochs=2)
        ),
        rng=7,
    )
    return detector, dataset, ticks


def _stream_slices(dataset, num_streams: int, ticks: int):
    """Per-stream package sequences, strided so streams differ."""
    packages = dataset.test_packages
    return [
        [packages[(i * 37 + t) % len(packages)] for t in range(ticks)]
        for i in range(num_streams)
    ]


def test_stream_throughput(profile):
    detector, dataset, ticks = _train_detector(profile)

    def best_of(runs: int, make_run):
        """Fastest of ``runs`` timings — damps scheduler/load noise."""
        best = float("inf")
        for _ in range(runs):
            run = make_run()
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
        return best

    rows = []
    results = {"profile": profile, "ticks_per_stream": ticks, "streams": {}}
    for num_streams in STREAM_COUNTS:
        streams = _stream_slices(dataset, num_streams, ticks)
        total = num_streams * ticks

        def sequential_run():
            monitors = [detector.stream() for _ in range(num_streams)]

            def run():
                for t in range(ticks):
                    for i, monitor in enumerate(monitors):
                        monitor.observe(streams[i][t])

            return run

        def batched_run():
            engine = detector.engine(num_streams)

            def run():
                for t in range(ticks):
                    engine.observe_batch([streams[i][t] for i in range(num_streams)])

            return run

        sequential_s = best_of(2, sequential_run)
        batched_s = best_of(2, batched_run)

        sequential_pps = total / sequential_s
        batched_pps = total / batched_s
        speedup = sequential_s / batched_s
        rows.append(
            f"{num_streams:>8}{sequential_pps:>16.0f}{batched_pps:>14.0f}"
            f"{speedup:>10.2f}x"
        )
        results["streams"][str(num_streams)] = {
            "sequential_packages_per_sec": sequential_pps,
            "batched_packages_per_sec": batched_pps,
            "speedup": speedup,
        }

    table = "\n".join(
        [f"{'streams':>8}{'seq pkg/s':>16}{'batch pkg/s':>14}{'speedup':>11}"] + rows
    )
    emit_report("stream_throughput", table)
    emit_json("stream_throughput", results)

    # The batching win the engine exists for: ≥5× at N=32.
    assert results["streams"]["32"]["speedup"] >= 5.0, table
