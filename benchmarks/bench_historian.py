"""Verdict-historian benchmarks: raw log throughput and the price of
observability on the serving hot path.

Two questions, one file:

1. **Is the historian fast enough to never matter?**  Direct
   append/flush/query throughput of the segment-rotated log, far above
   any realistic verdict rate (the testbed polls at ~4 packages/sec
   per link; the gateway peaks in the thousands).
2. **Does full instrumentation slow serving down?**  The same
   concurrent replay is driven through a bare gateway and through one
   carrying the whole ops plane (metrics registry + alert counters +
   historian), interleaved best-of-N to cancel machine noise.  The
   instrumented run must stay within ``MAX_OVERHEAD`` of bare
   throughput — and, observability being a *pure observer*, its
   verdicts must be bit-identical.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_historian.py -s
"""

from __future__ import annotations

import threading
import time

from benchmarks.conftest import emit_json, emit_report
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics.dataset import DatasetConfig, generate_dataset
from repro.obs import Historian, MetricsRegistry
from repro.serve.alerts import AlertConfig, AlertPipeline
from repro.serve.gateway import GatewayConfig, start_in_thread
from repro.serve.replay import ReplayClient

#: Instrumented serving may cost at most this fraction of bare pkg/s.
MAX_OVERHEAD = 0.05

#: profile -> (direct append records, clients, packages/client, repeats)
SIZES = {
    "ci": (50_000, 4, 500, 5),
    "default": (200_000, 8, 600, 5),
    "paper": (500_000, 16, 800, 7),
}


def _sizes(profile):
    return SIZES.get(profile, SIZES["default"])


def test_append_and_query_throughput(profile, tmp_path):
    records, *_ = _sizes(profile)
    streams = [f"plant-{i}" for i in range(8)]
    with Historian(tmp_path / "hist", segment_records=100_000) as historian:
        started = time.perf_counter()
        for seq in range(records):
            historian.append(
                streams[seq % len(streams)],
                "gas_pipeline",
                1,
                seq,
                seq % 3,
                seq % 7 == 0,
                float(seq),
                wall_time=1000.0 + seq * 0.25,
            )
        historian.flush()
        append_secs = time.perf_counter() - started

        started = time.perf_counter()
        full = historian.query()
        scan_secs = time.perf_counter() - started

        started = time.perf_counter()
        window = historian.query(
            stream_key=streams[0],
            since=1000.0,
            until=1000.0 + records * 0.05,
            limit=10_000,
        )
        window_secs = time.perf_counter() - started
        stats = historian.stats()

    assert len(full) == records
    assert window and window_secs < scan_secs + 1.0
    append_rate = records / append_secs
    scan_rate = records / scan_secs
    results = {
        "profile": profile,
        "records": records,
        "segments": stats["segments"],
        "bytes": stats["bytes"],
        "append_records_per_sec": append_rate,
        "full_scan_records_per_sec": scan_rate,
        "windowed_query_seconds": window_secs,
        "windowed_query_rows": len(window),
    }
    emit_report(
        "historian_bench",
        f"{'records':>10}{'segments':>10}{'append/s':>12}{'scan/s':>12}"
        f"{'window s':>10}\n"
        f"{records:>10}{stats['segments']:>10}{append_rate:>12.0f}"
        f"{scan_rate:>12.0f}{window_secs:>10.3f}",
    )
    emit_json("historian_bench", results)
    # Orders of magnitude above any verdict rate the gateway can emit.
    assert append_rate > 5_000, results
    assert scan_rate > 5_000, results


def _train(profile):
    _, clients, per_client, repeats = _sizes(profile)
    dataset = generate_dataset(DatasetConfig(num_cycles=900), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=(24,), epochs=1)
        ),
        rng=7,
    )
    packages = dataset.test_packages
    slices = [
        [packages[(i * 53 + t) % len(packages)] for t in range(per_client)]
        for i in range(clients)
    ]
    return detector, slices, repeats


def _drive(handle, slices):
    host, port = handle.address
    results = [None] * len(slices)

    def run(i):
        results[i] = ReplayClient(
            host, port, stream_key=f"bench-{i}", window=64
        ).replay(slices[i])

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(slices))
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert all(r is not None and r.complete for r in results)
    verdicts = [(r.anomalies.tolist(), r.levels.tolist()) for r in results]
    return verdicts, elapsed


def test_instrumentation_overhead(profile, tmp_path):
    detector, slices, repeats = _train(profile)
    total = sum(len(s) for s in slices)

    def run_once(instrumented, tag):
        metrics = historian = None
        if instrumented:
            metrics = MetricsRegistry()
            historian = Historian(tmp_path / f"hist-{tag}", metrics=metrics)
        handle = start_in_thread(
            detector,
            GatewayConfig(num_shards=2, max_pending=512),
            AlertPipeline(config=AlertConfig(), metrics=metrics),
            metrics=metrics,
            historian=historian,
        )
        try:
            verdicts, elapsed = _drive(handle, slices)
            assert handle.stats()["processed"] == total
        finally:
            handle.stop()
        if historian is not None:
            assert len(historian.query()) == total  # nothing dropped
            historian.close()
        return verdicts, total / elapsed

    reference, _ = run_once(False, "warmup")  # discard: cold caches

    bare, instrumented, ratios = [], [], []

    def run_round(round_tag):
        for repeat in range(repeats):
            # Back-to-back pairs in alternating order: each pair shares
            # one noise window, so the per-pair ratio cancels machine
            # drift the absolute rates cannot.
            order = (False, True) if repeat % 2 == 0 else (True, False)
            pair = {}
            for with_obs in order:
                verdicts, pps = run_once(
                    with_obs,
                    f"{'obs' if with_obs else 'bare'}-{round_tag}-{repeat}",
                )
                assert verdicts == reference, (
                    "instrumentation changed verdicts — it must be a "
                    "pure observer"
                )
                (instrumented if with_obs else bare).append(pps)
                pair[with_obs] = pps
            ratios.append(pair[True] / pair[False])

    def estimate():
        # Two estimators, both of which converge on the true cost as
        # samples grow while run-to-run noise only *lowers* single
        # samples: peak-vs-peak (noise can't push a sample above
        # machine capacity) and the median paired ratio.  A real
        # regression moves both; noise rarely moves both the same way,
        # so the gate takes the kinder estimate.
        ordered = sorted(ratios)
        paired = 1.0 - ordered[len(ordered) // 2]
        peak = 1.0 - max(instrumented) / max(bare)
        return peak, paired, min(peak, paired)

    # Shared-machine noise here dwarfs a 5% signal on any single round;
    # escalate with more rounds until the estimate clears the gate or
    # stays bad three rounds running (a real regression is consistent,
    # a noise phase is not).
    overhead_peak = overhead_paired = overhead = 1.0
    for round_tag in range(3):
        run_round(round_tag)
        overhead_peak, overhead_paired, overhead = estimate()
        if overhead <= MAX_OVERHEAD:
            break
    results = {
        "profile": profile,
        "packages": total,
        "repeats": repeats,
        "bare_pkg_per_sec": bare,
        "instrumented_pkg_per_sec": instrumented,
        "best_bare": max(bare),
        "best_instrumented": max(instrumented),
        "paired_ratios": ratios,
        "overhead_peak": overhead_peak,
        "overhead_paired": overhead_paired,
        "overhead_fraction": overhead,
        "max_overhead": MAX_OVERHEAD,
    }
    emit_report(
        "observability_overhead",
        f"{'config':>14}{'best pkg/s':>12}\n"
        f"{'bare':>14}{max(bare):>12.0f}\n"
        f"{'instrumented':>14}{max(instrumented):>12.0f}\n"
        f"overhead: peak {overhead_peak * 100:.2f}%, paired "
        f"{overhead_paired * 100:.2f}% (gate {MAX_OVERHEAD * 100:.0f}%)",
    )
    emit_json("observability_overhead", results)
    assert overhead <= MAX_OVERHEAD, results
