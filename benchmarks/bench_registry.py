"""Model registry benchmarks: resolve latency, identification, fleet gain.

Three questions the heterogeneous serving stack must answer with
numbers:

1. **Resolve latency** — what does routing cost?  Cold resolve (first
   ``.npz`` load of a scenario's active artifact) vs a warm resolve
   (in-process LRU hit) per registered scenario.
2. **Auto-identification accuracy** — scoring probe windows from every
   plant's capture against every registered signature database: the
   identification matrix must be perfectly diagonal, and traffic from a
   plant *missing* from the registry must abstain, not misroute.
3. **Heterogeneous fleet throughput** — the same multi-scenario fleet
   served (a) by one shared detector (the PR-4 baseline) and (b) routed
   per scenario through the registry: aggregate pkg/s side by side,
   showing what per-scenario quality costs at the gateway.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_registry.py -s
"""

from __future__ import annotations

import tempfile
import time

from benchmarks.conftest import emit_json, emit_report
from repro.experiments.pipeline import run_pipeline
from repro.persistence import profile_provenance
from repro.registry import ModelRegistry, ScenarioIdentifier
from repro.scenarios import scenario_names
from repro.serve.fleet import FleetConfig, FleetRunner

#: profile -> (polling cycles per fleet site, identification probes)
FLEET_CYCLES = {"ci": 40, "default": 60, "paper": 80}
PROBE_WINDOW = 16
PROBES_PER_SCENARIO = 8


def _probes(pipeline):
    """Probe windows spread across one scenario's full capture.

    The first window is the capture head — what a gateway actually sees
    when an untagged stream OPENs.  Later windows can land inside attack
    episodes (whose fabricated signatures no database knows); there the
    identifier is expected to *abstain*, never to misroute.
    """
    packages = pipeline.dataset.all_packages
    stride = max(PROBE_WINDOW, len(packages) // PROBES_PER_SCENARIO)
    starts = [i * stride for i in range(PROBES_PER_SCENARIO)]
    return [
        packages[s : s + PROBE_WINDOW]
        for s in starts
        if s + PROBE_WINDOW <= len(packages)
    ]


def test_registry_benchmark(profile):
    scenarios = scenario_names()
    pipelines = {
        name: run_pipeline(f"{profile}@{name}") for name in scenarios
    }

    with tempfile.TemporaryDirectory(prefix="bench-registry-") as root:
        registry = ModelRegistry(root)
        for name, pipeline in pipelines.items():
            registry.publish(
                pipeline.detector, name,
                meta=profile_provenance(pipeline.profile),
            )

        # -- 1. resolve latency: cold load vs LRU hit -------------------
        latency_rows = []
        latency = {}
        for name in scenarios:
            cold_registry = ModelRegistry(root)
            started = time.perf_counter()
            cold_registry.resolve(name)
            cold_ms = 1000.0 * (time.perf_counter() - started)
            started = time.perf_counter()
            cold_registry.resolve(name)
            warm_ms = 1000.0 * (time.perf_counter() - started)
            latency[name] = {"cold_ms": cold_ms, "warm_ms": warm_ms}
            latency_rows.append(
                f"{name:>14}{cold_ms:>12.2f}{warm_ms:>12.4f}"
                f"{cold_ms / max(warm_ms, 1e-6):>10.0f}x"
            )

        # -- 2. auto-identification accuracy matrix ---------------------
        identifier = ScenarioIdentifier(registry)
        matrix: dict[str, dict[str, int]] = {}
        head_picks: dict[str, str] = {}
        correct = misrouted = total = 0
        for true_name in scenarios:
            counts: dict[str, int] = {}
            for index, probe in enumerate(_probes(pipelines[true_name])):
                outcome = identifier.identify(probe)
                picked = outcome.scenario or "abstained"
                if index == 0:
                    head_picks[true_name] = picked
                counts[picked] = counts.get(picked, 0) + 1
                correct += picked == true_name
                misrouted += picked not in (true_name, "abstained")
                total += 1
            matrix[true_name] = counts
        accuracy = correct / total if total else 0.0

        # Unknown traffic: drop each scenario in turn from a partial
        # registry and demand abstention on its probes.
        abstentions = {}
        for held_out in scenarios:
            with tempfile.TemporaryDirectory(prefix="bench-partial-") as partial_root:
                partial = ModelRegistry(partial_root)
                for name in scenarios:
                    if name != held_out:
                        partial.publish(pipelines[name].detector, name)
                partial_identifier = ScenarioIdentifier(partial)
                outcomes = [
                    partial_identifier.identify(probe)
                    for probe in _probes(pipelines[held_out])
                ]
                abstentions[held_out] = sum(o.abstained for o in outcomes) / len(
                    outcomes
                )

        # -- 3. heterogeneous fleet vs single-detector baseline ---------
        cycles = FLEET_CYCLES.get(profile, FLEET_CYCLES["default"])
        fleet_config = FleetConfig(
            num_sites=2 * len(scenarios),
            cycles_per_site=cycles,
            num_shards=2,
            base_seed=7,
            verify_offline=True,
        )
        hetero = FleetRunner(config=fleet_config, registry=registry).run()
        assert hetero.all_complete and hetero.all_match_offline
        baseline = FleetRunner(
            pipelines["gas_pipeline"].detector, fleet_config
        ).run()
        assert baseline.all_complete

    corner = "true / picked"
    matrix_header = f"{corner:>14}" + "".join(
        f"{name[:10]:>12}" for name in scenarios
    ) + f"{'abstained':>12}"
    matrix_rows = [
        f"{true_name:>14}"
        + "".join(
            f"{matrix[true_name].get(name, 0):>12}" for name in scenarios
        )
        + f"{matrix[true_name].get('abstained', 0):>12}"
        for true_name in scenarios
    ]
    table = "\n".join(
        [
            f"resolve latency ({profile} profile)",
            f"{'scenario':>14}{'cold ms':>12}{'LRU ms':>12}{'speedup':>11}",
            *latency_rows,
            "",
            f"auto-identification over {PROBE_WINDOW}-package probes "
            f"(accuracy {accuracy:.0%}, misroutes {misrouted})",
            matrix_header,
            *matrix_rows,
            "",
            "held-out plant abstention rate: "
            + ", ".join(f"{k}={v:.0%}" for k, v in abstentions.items()),
            "",
            f"fleet throughput ({fleet_config.num_sites} sites, "
            f"{fleet_config.num_shards} shards)",
            f"{'serving':>16}{'packages':>10}{'pkg/s':>12}{'own-model':>11}",
            f"{'single (PR 4)':>16}{baseline.total_packages:>10}"
            f"{baseline.packages_per_second:>12.0f}{'no':>11}",
            f"{'heterogeneous':>16}{hetero.total_packages:>10}"
            f"{hetero.packages_per_second:>12.0f}{'yes':>11}",
        ]
    )
    emit_report("registry_bench", table)
    emit_json(
        "registry_bench",
        {
            "profile": profile,
            "resolve_latency_ms": latency,
            "identification": {
                "probe_window": PROBE_WINDOW,
                "accuracy": accuracy,
                "misroutes": misrouted,
                "capture_head_picks": head_picks,
                "matrix": matrix,
                "held_out_abstention": abstentions,
            },
            "fleet": {
                "sites": fleet_config.num_sites,
                "shards": fleet_config.num_shards,
                "single_pkg_per_sec": baseline.packages_per_second,
                "heterogeneous_pkg_per_sec": hetero.packages_per_second,
                "heterogeneous_all_match_offline": hetero.all_match_offline,
            },
        },
    )

    # The acceptance bar: every plant's capture identifies as itself at
    # the stream head, nothing is ever misrouted (mid-attack probes may
    # abstain — fabricated signatures are unknown everywhere), and
    # unknown plants abstain rather than ride a foreign model.
    assert head_picks == {name: name for name in scenarios}, table
    assert misrouted == 0, table
    assert all(rate == 1.0 for rate in abstentions.values()), table
    # An LRU hit must be orders of magnitude cheaper than a cold load.
    assert all(
        entry["warm_ms"] < entry["cold_ms"] for entry in latency.values()
    ), table
