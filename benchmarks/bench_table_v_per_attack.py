"""Regenerates paper Table V: detected ratio per attack type per model.

Paper shape: the framework leads in almost every attack category; MFCI
and Recon are caught perfectly by all signature-based models; CMRI (the
stealthy state-hiding attack) has the lowest framework recall; the
framework's biggest edge over BF is on command-content attacks
(MSCI/MPCI).
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.experiments.comparison import run_comparison
from repro.experiments.reporting import format_table_v
from repro.ics.attacks import CMRI, MFCI, MPCI, MSCI, RECON


def test_table_v_per_attack_recall(benchmark, profile):
    result = benchmark.pedantic(
        lambda: run_comparison(profile), rounds=1, iterations=1
    )
    emit_report("table_v", format_table_v(result.attack_recalls))

    if profile == "ci":
        return  # shape assertions need at least the default scale

    ours = result.attack_recalls["Our framework"]
    bf = result.attack_recalls["BF"]

    # MFCI and Recon are trivially visible to signature models.
    assert ours[MFCI] >= 0.99
    assert ours[RECON] >= 0.99
    assert bf[MFCI] >= 0.99
    assert bf[RECON] >= 0.99
    # CMRI (stealthy replay) is the hardest attack for the framework.
    assert ours[CMRI] == min(ours.values())
    # The framework beats the window Bloom filter on command attacks.
    assert ours[MSCI] >= bf[MSCI] - 0.05
    assert ours[MPCI] >= bf[MPCI] - 0.05
