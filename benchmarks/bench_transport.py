"""Protocol-adapter wire throughput: frame/parse packages/sec per dialect.

Pure transport math, no sockets or engines: for every registered
adapter this times (a) framing a capture into wire bytes, (b) feeding
those bytes back through the incremental decoder in MTU-ish chunks,
and (c) the same decode with line noise injected between frames, so
the cost of checksum verification and garbage resynchronisation shows
up as its own column.  The interesting comparison is Modbus (header
arithmetic only) against the checksummed IEC-104/DNP3-lite framings.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_transport.py -s
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit_json, emit_report
from repro.ics.dataset import generate_stream
from repro.serve.protocols import PROTOCOL_NAMES, get_adapter

CHUNK = 1400  # MTU-ish read size for the decode pass

#: profile -> (capture cycles, framing repeats, noise bytes every N frames)
SIZES = {
    "ci": (40, 4, 4),
    "default": (120, 8, 4),
    "paper": (300, 16, 4),
}

# Deliberately contains 0x05 (the DNP3 start byte) so decoders pay for
# false sync matches, not just a clean skip-ahead.
NOISE = bytes(range(1, 12))


def _chunks(blob: bytes, size: int):
    for offset in range(0, len(blob), size):
        yield blob[offset : offset + size]


def _bench_adapter(name: str, packages, repeats: int, noise_every: int):
    adapter = get_adapter(name)

    started = time.perf_counter()
    frames: list[bytes] = []
    for rep in range(repeats):
        for seq, package in enumerate(packages):
            frames.append(adapter.frame_data(package, rep * len(packages) + seq))
    encode_s = time.perf_counter() - started
    total = len(frames)

    clean_blob = b"".join(frames)
    decoder = adapter.decoder()
    started = time.perf_counter()
    decoded = sum(len(decoder.feed(chunk)) for chunk in _chunks(clean_blob, CHUNK))
    decode_s = time.perf_counter() - started
    assert decoded == total, f"{name}: decoded {decoded} of {total} clean frames"

    noisy_parts: list[bytes] = []
    for index, frame in enumerate(frames):
        if index % noise_every == 0:
            noisy_parts.append(NOISE)
        noisy_parts.append(frame)
    noisy_blob = b"".join(noisy_parts)
    decoder = adapter.decoder()
    started = time.perf_counter()
    recovered = sum(len(decoder.feed(chunk)) for chunk in _chunks(noisy_blob, CHUNK))
    noisy_s = time.perf_counter() - started
    assert recovered == total, f"{name}: lost frames to noise ({recovered}/{total})"
    assert decoder.resyncs > 0, f"{name}: noise injected but no resync recorded"

    return {
        "frames": total,
        "wire_bytes": len(clean_blob),
        "encode_pkg_per_sec": total / encode_s if encode_s else float("inf"),
        "decode_pkg_per_sec": total / decode_s if decode_s else float("inf"),
        "noisy_decode_pkg_per_sec": total / noisy_s if noisy_s else float("inf"),
        "resyncs": decoder.resyncs,
        "bytes_discarded": decoder.bytes_discarded,
    }


def test_transport_throughput(profile):
    cycles, repeats, noise_every = SIZES.get(profile, SIZES["default"])
    packages = generate_stream("gas_pipeline", cycles, seed=11)

    results = {"profile": profile, "capture_packages": len(packages), "adapters": {}}
    rows = []
    for name in PROTOCOL_NAMES:
        metrics = _bench_adapter(name, packages, repeats, noise_every)
        results["adapters"][name] = metrics
        rows.append(
            f"{name:>8}{metrics['encode_pkg_per_sec']:>14.0f}"
            f"{metrics['decode_pkg_per_sec']:>14.0f}"
            f"{metrics['noisy_decode_pkg_per_sec']:>14.0f}"
            f"{metrics['resyncs']:>9}{metrics['bytes_discarded']:>11}"
        )

    table = "\n".join(
        [
            f"{'adapter':>8}{'enc pkg/s':>14}{'dec pkg/s':>14}"
            f"{'noisy pkg/s':>14}{'resyncs':>9}{'discarded':>11}"
        ]
        + rows
    )
    emit_report("transport_throughput", table)
    emit_json("transport_throughput", results)

    # Wire handling must never be the serving bottleneck: the LSTM path
    # tops out around a few thousand pkg/s, so every adapter needs an
    # order of magnitude beyond real-time SCADA rates even with noise.
    slowest = min(
        m["noisy_decode_pkg_per_sec"] for m in results["adapters"].values()
    )
    assert slowest > 2000.0, table
