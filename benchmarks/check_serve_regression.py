"""Perf-regression smoke gate over the serve-throughput report.

Reads ``reports/serve_throughput.json`` (written by
``bench_serve_throughput.py`` in the same CI run) and fails if the
multi-process backend regressed below the single-process baseline it
exists to beat: with >= 2 cores, the best process-mode pkg/s must not
fall under the best thread-mode pkg/s.  On a single-core runner the
comparison is physically meaningless (the process backend pays IPC
cost with no parallelism to buy), so the gate prints the numbers and
passes.

Run:  python benchmarks/check_serve_regression.py [report.json]
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT_REPORT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "reports"
    / "serve_throughput.json"
)


def best(per_mode: dict) -> tuple[int, float]:
    """``(worker_count, pkg/s)`` of a mode's fastest configuration."""
    workers, entry = max(
        per_mode.items(), key=lambda item: item[1]["packages_per_sec"]
    )
    return int(workers), float(entry["packages_per_sec"])


def main(argv: list[str]) -> int:
    report = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_REPORT
    if not report.exists():
        print(f"FAIL: no throughput report at {report}; run the bench first")
        return 1
    results = json.loads(report.read_text())
    modes = results.get("modes", {})
    if "thread" not in modes or "process" not in modes:
        print(
            f"FAIL: {report} predates the worker-mode benchmark "
            f"(modes: {sorted(modes)}); regenerate it"
        )
        return 1

    cpu_count = int(results.get("cpu_count") or 1)
    thread_workers, thread_peak = best(modes["thread"])
    process_workers, process_peak = best(modes["process"])
    print(
        f"thread  peak: {thread_peak:>10.0f} pkg/s "
        f"({thread_workers} worker(s))\n"
        f"process peak: {process_peak:>10.0f} pkg/s "
        f"({process_workers} worker(s))\n"
        f"cores: {cpu_count}"
    )

    if cpu_count < 2:
        print(
            "PASS (advisory): single-core runner — process workers have "
            "no parallelism to exploit, skipping the peak comparison"
        )
        return 0
    if process_peak < thread_peak:
        print(
            f"FAIL: multi-process peak {process_peak:.0f} pkg/s regressed "
            f"below the single-process baseline {thread_peak:.0f} pkg/s"
        )
        return 1
    print(
        f"PASS: multi-process peak is {process_peak / thread_peak:.2f}x "
        "the single-process baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
