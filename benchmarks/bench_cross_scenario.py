"""Cross-scenario evaluation matrix: train on X, detect on Y.

Trains one framework per registered scenario (through the pipeline
cache) and judges every scenario's test stream with every detector.
The diagonal is in-scenario quality — the new plants must hold up
against the paper's gas-pipeline baseline — and the off-diagonal
quantifies how process-specific the learned signature database and
LSTM are.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_cross_scenario.py -s
"""

from __future__ import annotations

from benchmarks.conftest import emit_json, emit_report
from repro.experiments.comparison import run_cross_scenario
from repro.experiments.reporting import format_cross_scenario_matrix


def test_cross_scenario_matrix(profile):
    result = run_cross_scenario(profile)
    table = format_cross_scenario_matrix(result)
    emit_report("cross_scenario", table)
    emit_json("cross_scenario", result.to_json())

    diagonal = result.diagonal()
    gas = diagonal["gas_pipeline"]
    for name, metrics in diagonal.items():
        # In-scenario quality on every plant is comparable to the
        # paper's testbed baseline.
        assert metrics.f1_score >= 0.8 * gas.f1_score, (name, table)
        assert metrics.recall > 0.5, (name, table)
