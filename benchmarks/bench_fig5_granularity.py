"""Regenerates paper Fig. 5: validation error vs discretization granularity.

Paper claim: the validation error (share of clean validation packages
whose signature is missing from the training database) grows with the
granularity of the pressure/setpoint partitions; the chosen granularity
is the finest whose error stays below θ = 0.03, and the paper settles on
20 pressure bins and 10 setpoint bins.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.experiments.figures import fig5_granularity
from repro.experiments.pipeline import run_pipeline


def test_fig5_granularity_search(benchmark, profile):
    pipeline = run_pipeline(profile)
    result = benchmark.pedantic(
        lambda: fig5_granularity(pipeline.dataset, rng=pipeline.profile.seed),
        rounds=1,
        iterations=1,
    )

    corner = "pressure\\setpoint"
    lines = [
        f"theta = {result.theta}   chosen: pressure_bins="
        f"{result.best_pressure_bins}, setpoint_bins={result.best_setpoint_bins}",
        f"{corner:<18}" + "".join(f"{s:>8}" for s in result.setpoint_grid),
    ]
    for i, pressure_bins in enumerate(result.pressure_grid):
        row = f"{pressure_bins:<18}" + "".join(
            f"{result.errors[i, j]:>8.4f}" for j in range(len(result.setpoint_grid))
        )
        lines.append(row)
    emit_report("fig5_granularity", "\n".join(lines))

    errors = result.errors
    # Validation error grows (weakly) with granularity along both axes.
    row_means = errors.mean(axis=1)
    col_means = errors.mean(axis=0)
    assert row_means[-1] >= row_means[0] - 1e-9
    assert col_means[-1] >= col_means[0] - 1e-9
    # The coarsest granularity must be feasible, and the chosen point's
    # error must respect theta whenever any grid point does.
    if np.any(errors < result.theta):
        chosen = result.error_at(result.best_pressure_bins, result.best_setpoint_bins)
        assert chosen < result.theta
