"""Regenerates the §VIII-A2 cost accounting: train time, latency, memory.

Paper figures (3.4 GHz workstation, Keras-era stack): 35 min training,
0.03 ms per classification, 684 KB model memory, 613 signatures, k=4.
Our substrate is a pure-numpy LSTM stepped from Python, so absolute
latency shifts; the claims that must survive are architectural — memory
in the hundreds of KB and per-package latency in the sub-millisecond
range suitable for ICS traffic monitors.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.experiments.pipeline import run_pipeline
from repro.experiments.reporting import PAPER_COSTS


def test_runtime_costs(benchmark, profile):
    pipeline = run_pipeline(profile)

    # Benchmark steady-state classification latency on a slice of test
    # traffic (fresh monitor per round, so state handling is included).
    packages = pipeline.dataset.test_packages[:500]

    def classify_slice():
        monitor = pipeline.detector.stream()
        for package in packages:
            monitor.observe(package)

    benchmark.pedantic(classify_slice, rounds=3, iterations=1)

    memory_kb = pipeline.detector.memory_bytes() / 1024.0
    lines = [
        f"{'quantity':<28}{'paper':>12}{'measured':>14}",
        f"{'training time (min)':<28}{PAPER_COSTS['training_minutes']:>12.1f}"
        f"{pipeline.train_seconds / 60.0:>14.2f}",
        f"{'classification (ms/pkg)':<28}{PAPER_COSTS['classification_ms']:>12.2f}"
        f"{pipeline.per_package_ms:>14.3f}",
        f"{'model memory (KB)':<28}{PAPER_COSTS['model_memory_kb']:>12.0f}"
        f"{memory_kb:>14.0f}",
        f"{'signature database size':<28}{PAPER_COSTS['signature_database_size']:>12}"
        f"{pipeline.artifacts.vocabulary_size:>14}",
        f"{'chosen k':<28}{PAPER_COSTS['chosen_k']:>12}"
        f"{pipeline.artifacts.chosen_k:>14}",
        f"{'package-level val error':<28}{PAPER_COSTS['package_theta']:>12.2f}"
        f"{pipeline.artifacts.package_validation_error:>14.4f}",
    ]
    emit_report("runtime_costs", "\n".join(lines))

    # Architectural claims that must hold on any substrate.
    assert memory_kb < 5000, "model must stay monitor-deployable"
    assert pipeline.per_package_ms < 10.0, "sub-10ms per package"
    assert pipeline.artifacts.vocabulary_size > 50
