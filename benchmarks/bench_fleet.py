"""Fleet serving throughput: aggregate gateway pkg/s vs concurrent sites.

Drives the full production load shape end to end: N simulated sites —
scenarios assigned round-robin across the registered plants — each
replay their own capture concurrently into one sharded gateway over
real loopback sockets.  The metric is aggregate packages/sec from
fleet start to last verdict, as the site count scales 1 → 4 → 16 → 100.

More sites widen the per-tick engine batches (throughput up) until
socket/session overhead dominates; the emitted table shows where that
knee sits for the profile's model size.  Past
:data:`repro.serve.fleet.AUTO_ASYNC_THRESHOLD` sites the runner's
``auto`` driver multiplexes every site as a coroutine instead of an OS
thread — which is what lets the 100-site row exist at all.

Run:  REPRO_PROFILE=ci pytest benchmarks/bench_fleet.py -s
"""

from __future__ import annotations

from benchmarks.conftest import emit_json, emit_report
from repro.experiments.pipeline import run_pipeline
from repro.serve.fleet import FleetConfig, FleetRunner

SITE_COUNTS = (1, 4, 16, 100)

#: profile -> polling cycles per site capture, keyed by site count
#: (the 100-site row uses short captures: the point is concurrent
#: session pressure, not per-site stream length).
CYCLES_PER_SITE = {"ci": 40, "default": 60, "paper": 80}
CYCLES_AT_SCALE = {"ci": 4, "default": 8, "paper": 10}


def test_fleet_throughput(profile):
    detector = run_pipeline(profile).detector
    cycles = CYCLES_PER_SITE.get(profile, CYCLES_PER_SITE["default"])
    cycles_at_scale = CYCLES_AT_SCALE.get(profile, CYCLES_AT_SCALE["default"])

    rows = []
    results = {"profile": profile, "cycles_per_site": cycles, "sites": {}}
    for num_sites in SITE_COUNTS:
        config = FleetConfig(
            num_sites=num_sites,
            cycles_per_site=cycles_at_scale if num_sites >= 100 else cycles,
            num_shards=2,
            base_seed=7,
        )
        result = FleetRunner(detector, config).run()
        assert result.all_complete, f"incomplete replay at {num_sites} sites"
        assert result.gateway_stats["processed"] == result.total_packages
        assert result.gateway_stats["streams"] == num_sites

        ticks = sum(s["ticks"] for s in result.gateway_stats["shards"])
        mean_batch = result.total_packages / ticks if ticks else 0.0
        scenarios = len(result.scenarios_streamed)
        driver = config.effective_driver()
        rows.append(
            f"{num_sites:>6}{driver:>9}{scenarios:>11}"
            f"{result.total_packages:>10}{result.packages_per_second:>12.0f}"
            f"{mean_batch:>12.2f}"
        )
        results["sites"][str(num_sites)] = {
            "driver": driver,
            "scenarios_streamed": list(result.scenarios_streamed),
            "total_packages": result.total_packages,
            "packages_per_sec": result.packages_per_second,
            "mean_batch_rows_per_tick": mean_batch,
            "seconds": result.seconds,
        }

    table = "\n".join(
        [
            f"{'sites':>6}{'driver':>9}{'scenarios':>11}{'packages':>10}"
            f"{'pkg/s':>12}{'rows/tick':>12}"
        ]
        + rows
    )
    emit_report("fleet_throughput", table)
    emit_json("fleet_throughput", results)

    # Real links poll at ~4 pkg/s per site; even the 100-site fleet must
    # clear its aggregate real-time rate with huge headroom.
    slowest = min(r["packages_per_sec"] for r in results["sites"].values())
    assert slowest > 100.0, table
