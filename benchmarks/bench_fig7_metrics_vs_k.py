"""Regenerates paper Fig. 7: framework metrics against the choice of k.

Paper claims: recall falls as k grows (mimicry attacks hide inside a
larger top-k set) while precision rises; the F1-optimal k sits near the
k chosen purely from clean validation data — evidence the paper's
tuning procedure is effective.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.experiments.figures import fig7_metrics_vs_k
from repro.experiments.pipeline import run_pipeline


def test_fig7_metrics_vs_k(benchmark, profile):
    pipeline = run_pipeline(profile)
    sweep = benchmark.pedantic(
        lambda: fig7_metrics_vs_k(pipeline), rounds=1, iterations=1
    )

    lines = [f"{'k':>3}{'precision':>11}{'recall':>9}{'accuracy':>10}{'f1':>7}"]
    for k, metrics in zip(sweep.ks, sweep.metrics):
        lines.append(
            f"{k:>3}{metrics.precision:>11.3f}{metrics.recall:>9.3f}"
            f"{metrics.accuracy:>10.3f}{metrics.f1_score:>7.3f}"
        )
    lines.append(f"chosen k from validation: {pipeline.artifacts.chosen_k}")
    emit_report("fig7_metrics_vs_k", "\n".join(lines))

    if profile == "ci":
        return  # shape assertions need at least the default scale

    recalls = sweep.series("recall")
    precisions = sweep.series("precision")
    f1s = sweep.series("f1_score")
    # Recall decreases in k; precision increases (weak monotonicity).
    assert recalls[0] >= recalls[-1] - 1e-9
    assert precisions[-1] >= precisions[0] - 1e-9
    # The validation-chosen k performs near the best sweep F1.
    chosen = pipeline.artifacts.chosen_k
    chosen_f1 = None
    for k, f1 in zip(sweep.ks, f1s):
        if k == chosen:
            chosen_f1 = f1
    if chosen_f1 is not None:
        assert chosen_f1 >= max(f1s) - 0.08
