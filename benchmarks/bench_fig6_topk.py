"""Regenerates paper Fig. 6: top-k error with/without probabilistic noise.

Paper claims: err_k converges quickly to ~0 as k grows on both training
and validation data; the noise-trained model's curve is close to the
noise-free one (the network is trainable to be robust to noisy input);
and the chosen k (smallest with validation err_k < θ = 0.05, paper k=4)
sits where the curve flattens.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.core.combined import choose_k_from_curve
from repro.experiments.figures import fig6_topk_curves
from repro.experiments.pipeline import run_pipeline
from repro.experiments.reporting import format_curve


def test_fig6_topk_error_curves(benchmark, profile):
    pipeline = run_pipeline(profile)
    curves = benchmark.pedantic(
        lambda: fig6_topk_curves(pipeline), rounds=1, iterations=1
    )

    theta = pipeline.profile.detector.theta_timeseries
    chosen = choose_k_from_curve(curves.validation_with_noise, theta)
    lines = [
        format_curve("train (with noise)", curves.train_with_noise),
        format_curve("validation (with noise)", curves.validation_with_noise),
        format_curve("train (no noise)", curves.train_without_noise),
        format_curve("validation (no noise)", curves.validation_without_noise),
        f"theta={theta}  chosen k={chosen}  (paper: k=4 at theta=0.05)",
    ]
    emit_report("fig6_topk", "\n".join(lines))

    if profile == "ci":
        return  # shape assertions need at least the default scale

    for curve in (
        curves.train_with_noise,
        curves.validation_with_noise,
        curves.train_without_noise,
        curves.validation_without_noise,
    ):
        ks = sorted(curve)
        # err_k decreases monotonically in k ...
        assert all(curve[a] >= curve[b] - 1e-9 for a, b in zip(ks, ks[1:]))
        # ... and drops substantially from k=1 to k=max.
        assert curve[ks[-1]] <= curve[ks[0]]
    # Training error at large k is small (the model fits its data).
    assert curves.train_with_noise[max(curves.ks)] < 0.15
    # Noise-trained and noise-free validation curves stay comparable.
    gap = abs(
        curves.validation_with_noise[max(curves.ks)]
        - curves.validation_without_noise[max(curves.ks)]
    )
    assert gap < 0.1
