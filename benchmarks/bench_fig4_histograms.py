"""Regenerates paper Fig. 4: histograms of the continuous features.

Paper claim: the time interval and crc rate exhibit natural clusters
(two groups each), while pressure measurement and setpoint spread over
their ranges without natural clusters — which motivates k-means for the
former and even-interval partitioning for the latter (Table III).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.experiments.figures import fig4_histograms
from repro.experiments.pipeline import run_pipeline


def _bimodality(counts: np.ndarray) -> float:
    """Mass fraction in the two dominant non-adjacent histogram regions."""
    total = counts.sum()
    if total == 0:
        return 0.0
    occupied = counts > 0
    # Count contiguous occupied runs; clustered features have few runs
    # holding nearly all mass.
    runs = []
    current = 0.0
    for count, busy in zip(counts, occupied):
        if busy:
            current += count
        elif current:
            runs.append(current)
            current = 0.0
    if current:
        runs.append(current)
    runs.sort(reverse=True)
    return float(sum(runs[:2]) / total)


def test_fig4_feature_histograms(benchmark, profile):
    pipeline = run_pipeline(profile)
    histograms = benchmark.pedantic(
        lambda: fig4_histograms(pipeline.dataset), rounds=1, iterations=1
    )

    lines = []
    for name, (counts, edges) in histograms.items():
        occupied = int(np.sum(counts > 0))
        top2 = _bimodality(counts)
        lines.append(
            f"{name:<24} range=[{edges[0]:.4f}, {edges[-1]:.4f}]  "
            f"occupied_bins={occupied}/200  top2_cluster_mass={top2:.3f}"
        )
    emit_report("fig4_histograms", "\n".join(lines))

    # Interval and crc rate: two tight clusters hold ~all the mass.
    assert _bimodality(histograms["time_interval"][0]) > 0.95
    assert _bimodality(histograms["crc_rate"][0]) > 0.90
    # Pressure spreads widely (no two clusters capture it).
    pressure_counts = histograms["pressure_measurement"][0]
    assert int(np.sum(pressure_counts > 0)) > 40
