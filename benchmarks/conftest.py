"""Shared benchmark configuration.

``REPRO_PROFILE`` selects the experiment size (``ci`` / ``default`` /
``paper``); the default profile reproduces every table and figure at a
scale that runs on a laptop in minutes.  Each benchmark prints its
paper-vs-measured table and also writes it to ``reports/`` so the
output survives pytest's capture.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).resolve().parent.parent / "reports"


def profile_name() -> str:
    """The experiment profile benchmarks run under."""
    return os.environ.get("REPRO_PROFILE", "default")


def emit_report(name: str, text: str) -> None:
    """Print a report table and persist it under ``reports/``."""
    print(f"\n=== {name} ===\n{text}\n")
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark results under ``reports/``."""
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    (REPORT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def profile() -> str:
    return profile_name()
