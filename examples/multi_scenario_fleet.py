"""Multi-plant scenarios: registry, cross-scenario eval, fleet serving.

Tours the scenario framework in three stages:

1. Scenarios — the three registered plants (gas pipeline, water tank,
   power feeder) generate captures with the same package schema but
   different physics, protocol maps and attack catalogs.
2. Cross-scenario matrix — one framework trained per scenario judges
   every scenario's test stream: the diagonal matches the paper-style
   in-scenario quality, the off-diagonal shows how process-specific
   the learned signature database is.
3. Fleet — eight simulated sites across all three scenarios stream
   concurrently into one sharded gateway; every site's verdicts are
   verified bit-identical to offline ``detect()``.

Run:  python examples/multi_scenario_fleet.py
"""

from repro import FleetConfig, FleetRunner, generate_dataset, get_scenario, scenario_names
from repro.experiments.comparison import run_cross_scenario
from repro.experiments.reporting import format_cross_scenario_matrix


def main() -> None:
    # --- stage 1: the registered plants ----------------------------------
    print("--- registered scenarios ---")
    for name in scenario_names():
        scenario = get_scenario(name)
        dataset = generate_dataset(scenario.dataset_config(num_cycles=200), seed=1)
        summary = dataset.summary()
        print(
            f"{name:<14} {scenario.process_variable} ({scenario.process_unit}); "
            f"{summary['total']} packages, {summary['attack']} attack-labelled"
        )

    # --- stage 2: train on X, detect on Y --------------------------------
    print("\n--- cross-scenario evaluation matrix (ci profile) ---")
    matrix = run_cross_scenario("ci")
    print(format_cross_scenario_matrix(matrix))

    # --- stage 3: a heterogeneous fleet through one gateway --------------
    print("\n--- 8-site fleet through one 2-shard gateway ---")
    detector = matrix.pipelines["gas_pipeline"].detector
    result = FleetRunner(
        detector,
        FleetConfig(num_sites=8, cycles_per_site=30, num_shards=2,
                    verify_offline=True),
    ).run()
    for site in result.sites:
        print(
            f"{site.spec.name:<26} {site.packages:>4} pkgs "
            f"{int(site.anomalies.sum()):>4} alerts  "
            f"offline-match={site.matches_offline}"
        )
    print(
        f"fleet: {result.total_packages} packages over "
        f"{len(result.scenarios_streamed)} scenarios at "
        f"{result.packages_per_second:.0f} pkg/s; "
        f"all bit-identical to offline detect: {result.all_match_offline}"
    )


if __name__ == "__main__":
    main()
