"""Model registry & heterogeneous serving: publish, route, identify, swap.

Tours the registry subsystem in four stages:

1. Publish — train one detector per registered scenario (ci profile,
   shared with the pipeline cache) and publish each as its scenario's
   v1 in a directory-backed model registry.
2. Identify — score a probe window of each plant's live capture against
   every registered signature database: the hit-rate matrix is what the
   gateway uses to route untagged streams (and to *abstain* on plants
   it has no model for).
3. Heterogeneous fleet — two sites per scenario stream concurrently
   into one sharded gateway; every stream is routed to its own
   scenario's artifact and verified bit-identical to offline
   ``detect()`` with exactly that artifact.
4. Hot-swap — publish a v2 for one scenario while the gateway is live:
   affected streams drain onto the new version between ticks with zero
   dropped packages.

Run:  python examples/heterogeneous_fleet.py
"""

import tempfile

from repro import ModelRegistry, ScenarioIdentifier, scenario_names
from repro.experiments.pipeline import run_pipeline
from repro.ics.dataset import generate_stream
from repro.persistence import profile_provenance
from repro.serve.fleet import FleetConfig, FleetRunner


def main() -> None:
    # --- stage 1: publish one model per scenario --------------------------
    print("--- publishing per-scenario models (ci profile) ---")
    root = tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(root)
    pipelines = {}
    for name in scenario_names():
        pipelines[name] = run_pipeline(f"ci@{name}")
        entry = registry.publish(
            pipelines[name].detector, name,
            meta=profile_provenance(pipelines[name].profile),
        )
        print(f"published {entry.label:<18} F1={pipelines[name].metrics.f1_score:.2f}")

    # --- stage 2: scenario auto-identification ----------------------------
    print("\n--- auto-identification (16-package capture-head probes) ---")
    identifier = ScenarioIdentifier(registry)
    for name in scenario_names():
        probe = generate_stream(name, 20, 9)[:16]
        print(f"{name:<16} -> {identifier.identify(probe).describe()}")

    # --- stage 3: a heterogeneous fleet through one gateway ---------------
    print("\n--- heterogeneous fleet: every site on its own model ---")
    result = FleetRunner(
        config=FleetConfig(
            num_sites=2 * len(scenario_names()),
            cycles_per_site=30,
            num_shards=2,
            verify_offline=True,
        ),
        registry=registry,
    ).run()
    for site in result.sites:
        print(
            f"{site.spec.name:<26} {site.packages:>4} pkgs  "
            f"[{site.route_scenario}@{site.route_version}]  "
            f"offline-match={site.matches_offline}"
        )
    print(
        f"fleet: {result.total_packages} packages over "
        f"{len(result.scenarios_streamed)} scenarios at "
        f"{result.packages_per_second:.0f} pkg/s; "
        f"every site bit-identical to its own artifact: "
        f"{result.all_match_offline}"
    )

    # --- stage 4: hot-swap a new version under live serving ---------------
    print("\n--- hot-swap: publish water_tank v2 against a live gateway ---")
    from repro.serve.gateway import DetectionGateway, GatewayConfig, start_in_thread
    from repro.serve.replay import ReplayClient

    handle = start_in_thread(
        None, gateway=DetectionGateway(config=GatewayConfig(), registry=registry)
    )
    try:
        host, port = handle.address
        capture = generate_stream("water_tank", 30, 4)
        half = len(capture) // 2
        ReplayClient(host, port, stream_key="tank-07",
                     scenario="water_tank").replay(capture[:half])
        registry.publish(pipelines["water_tank"].detector, "water_tank")
        rest = ReplayClient(host, port, stream_key="tank-07").replay(capture)
        stats = handle.stats()
        route = stats["routes"]["tank-07"]
        print(
            f"judged {half} packages on v1, swapped at seq {route['seq_base']}, "
            f"finished {rest.judged} on v{route['version']} "
            f"(swaps applied: {stats['swaps_applied']}, dropped: 0)"
        )
    finally:
        handle.stop()


if __name__ == "__main__":
    main()
