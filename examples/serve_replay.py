"""Online serving: a live gateway, a replay client, and a fail-over.

Deployment-shaped usage of the serving layer, in three stages:

1. Serve — a trained detector goes online behind a Modbus/TCP gateway;
   an alert pipeline prints severity-classified, deduplicated alerts.
2. Replay — a client streams a labelled capture at the gateway over a
   real socket and collects per-package verdicts, which match offline
   ``detector.detect()`` bit for bit.
3. Fail-over — the gateway is killed without warning; a new gateway
   restarts from the periodic checkpoint and the client simply replays
   the capture again: already-judged packages are skipped, the rest
   are judged identically to the uninterrupted run.

Run:  python examples/serve_replay.py
"""

import os
import tempfile

import numpy as np

from repro import (
    CombinedDetector,
    DatasetConfig,
    DetectorConfig,
    TimeSeriesDetectorConfig,
    generate_dataset,
)
from repro.serve import AlertConfig, AlertPipeline, GatewayConfig, ReplayClient, stdout_sink
from repro.serve.gateway import DetectionGateway, start_in_thread


def main() -> None:
    dataset = generate_dataset(DatasetConfig(num_cycles=1500), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(timeseries=TimeSeriesDetectorConfig(hidden_sizes=(32,), epochs=8)),
        rng=7,
    )
    capture = dataset.test_packages[:400]
    offline = detector.detect(capture)

    checkpoint = os.path.join(tempfile.mkdtemp(prefix="repro-gw-"), "gateway.npz")
    alerts = AlertPipeline(
        sinks=[stdout_sink],
        config=AlertConfig(dedup_window=10.0, escalate_threshold=3),
    )

    # --- stage 1+2: serve and replay -------------------------------------
    print("--- gateway up; replaying the capture over a real socket ---")
    handle = start_in_thread(
        detector,
        GatewayConfig(num_shards=2, checkpoint_path=checkpoint, checkpoint_every=100),
        alerts,
    )
    host, port = handle.address
    client = ReplayClient(host, port, stream_key="plant-7", noise_every=9)
    result = client.replay(capture[:250])
    identical = np.array_equal(result.anomalies, offline.is_anomaly[:250])
    print(
        f"\njudged {result.judged} packages, {result.alerts} anomalous; "
        f"bit-identical to offline detect: {identical}"
    )
    stats = handle.stats()
    print(
        f"gateway: {stats['processed']} served, "
        f"{stats['bytes_discarded']} noise bytes discarded, "
        f"{stats['checkpoints_written']} checkpoints"
    )

    # --- stage 3: kill, restart from checkpoint, finish the capture ------
    print("\n--- hard kill (no shutdown checkpoint); restarting from disk ---")
    handle.stop(checkpoint=False)
    gateway = DetectionGateway.from_checkpoint(checkpoint, alerts=AlertPipeline())
    handle = start_in_thread(None, gateway=gateway)
    host, port = handle.address
    resumed = ReplayClient(host, port, stream_key="plant-7").replay(capture)
    print(
        f"resumed at package {resumed.start} "
        f"(re-judged {250 - resumed.start} in-flight, judged {resumed.judged} total)"
    )
    stitched = np.concatenate([result.anomalies[: resumed.start], resumed.anomalies])
    print(
        "stitched run bit-identical to uninterrupted offline detect: "
        f"{np.array_equal(stitched, offline.is_anomaly)}"
    )
    handle.stop()


if __name__ == "__main__":
    main()
