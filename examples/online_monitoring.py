"""Online monitoring: classify live SCADA traffic as it arrives.

Deployment-shaped usage, in two stages:

1. Single stream — a trained detector is attached to a live package
   stream via ``detector.stream()`` and raises alerts as packages
   arrive; the streaming path is bit-identical to batch detection, and
   the monitor reports which level (Bloom filter / LSTM) fired.
2. Multi-stream — a SCADA front-end terminating several field-bus links
   monitors all of them through one ``StreamEngine``: every tick
   advances all streams with a single batched LSTM step, and streams
   attach/detach dynamically as PLCs come and go.

Run:  python examples/online_monitoring.py
"""

import time

from repro import (
    CombinedDetector,
    DatasetConfig,
    DetectorConfig,
    StreamEngine,
    TimeSeriesDetectorConfig,
    generate_dataset,
)
from repro.core.combined import LEVEL_NAMES
from repro.ics import ATTACK_NAMES


def single_stream(detector, live_traffic) -> float:
    """One monitored link, one package at a time."""
    monitor = detector.stream()
    observed = []
    started = time.perf_counter()
    for package in live_traffic:
        observed.append(monitor.observe(package))
    elapsed = time.perf_counter() - started

    alerts = 0
    for index, (package, (is_anomaly, level)) in enumerate(zip(live_traffic, observed)):
        if is_anomaly and alerts < 12:
            truth = ATTACK_NAMES[package.label]
            print(
                f"t={package.time:10.2f}s  pkg #{index:<5} ALERT "
                f"({LEVEL_NAMES[level]:<11}) ground truth: {truth}"
            )
        alerts += int(is_anomaly)
    per_package_ms = 1000.0 * elapsed / len(live_traffic)
    print(
        f"\n{alerts} alerts over {len(live_traffic)} packages; "
        f"{per_package_ms:.3f} ms per classification "
        f"(paper reports 0.03 ms on its workstation)"
    )
    print(f"model memory: {detector.memory_bytes() / 1024:.0f} KB (paper: 684 KB)")
    return len(live_traffic) / elapsed


def multi_stream(detector, live_traffic, num_streams: int = 8) -> float:
    """Several monitored links advanced by one batched step per tick."""
    ticks = len(live_traffic) // num_streams
    streams = [
        live_traffic[i * ticks : (i + 1) * ticks] for i in range(num_streams)
    ]

    engine: StreamEngine = detector.engine(num_streams)
    alerts_per_stream = [0] * num_streams
    started = time.perf_counter()
    for t in range(ticks):
        anomalies, _levels = engine.observe_batch([s[t] for s in streams])
        for i, flagged in enumerate(anomalies):
            alerts_per_stream[i] += int(flagged)
    elapsed = time.perf_counter() - started

    print(f"\n--- {num_streams} concurrent streams, one batched step per tick ---")
    for stream_id, alerts in zip(engine.stream_ids, alerts_per_stream):
        print(f"stream {stream_id}: {alerts:4d} alerts over {ticks} packages")

    # Streams come and go at runtime: drop one link, attach a fresh one.
    engine.detach(engine.stream_ids[0])
    late = engine.attach()
    engine.observe(late, live_traffic[0])
    print(
        f"after detach+attach: {engine.num_streams} streams, "
        f"ids {engine.stream_ids}"
    )
    return num_streams * ticks / elapsed


def main() -> None:
    dataset = generate_dataset(DatasetConfig(num_cycles=3000), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(timeseries=TimeSeriesDetectorConfig(hidden_sizes=(48,), epochs=12)),
        rng=7,
    )

    live_traffic = dataset.test_packages[:2000]
    single_pps = single_stream(detector, live_traffic)
    batched_pps = multi_stream(detector, live_traffic)
    print(
        f"\nthroughput: {single_pps:.0f} pkg/s single-stream vs "
        f"{batched_pps:.0f} pkg/s batched ({batched_pps / single_pps:.1f}x)"
    )


if __name__ == "__main__":
    main()
