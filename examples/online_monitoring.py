"""Online monitoring: classify live SCADA traffic one package at a time.

Deployment-shaped usage: a trained detector is attached to a live
package stream via ``detector.stream()`` and raises alerts as packages
arrive — the streaming path is bit-identical to batch detection, and the
monitor reports which level (Bloom filter / LSTM) fired.

Run:  python examples/online_monitoring.py
"""

import time

from repro import (
    CombinedDetector,
    DatasetConfig,
    DetectorConfig,
    TimeSeriesDetectorConfig,
    generate_dataset,
)
from repro.core.combined import LEVEL_NAMES
from repro.ics import ATTACK_NAMES


def main() -> None:
    dataset = generate_dataset(DatasetConfig(num_cycles=3000), seed=7)
    detector, _ = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(timeseries=TimeSeriesDetectorConfig(hidden_sizes=(48,), epochs=12)),
        rng=7,
    )

    monitor = detector.stream()
    alerts = 0
    started = time.perf_counter()
    live_traffic = dataset.test_packages[:2000]

    for index, package in enumerate(live_traffic):
        is_anomaly, level = monitor.observe(package)
        if is_anomaly and alerts < 12:
            truth = ATTACK_NAMES[package.label]
            print(
                f"t={package.time:10.2f}s  pkg #{index:<5} ALERT "
                f"({LEVEL_NAMES[level]:<11}) ground truth: {truth}"
            )
        alerts += int(is_anomaly)

    elapsed = time.perf_counter() - started
    per_package_ms = 1000.0 * elapsed / len(live_traffic)
    print(
        f"\n{alerts} alerts over {len(live_traffic)} packages; "
        f"{per_package_ms:.3f} ms per classification "
        f"(paper reports 0.03 ms on its workstation)"
    )
    print(f"model memory: {detector.memory_bytes() / 1024:.0f} KB (paper: 684 KB)")


if __name__ == "__main__":
    main()
