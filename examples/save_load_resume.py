"""Persistence walkthrough: train once, deploy anywhere, fail over live.

Three stages, mirroring the paper's train-offline / monitor-online
split (Fig. 3):

1. Train the combined framework and save it as ONE ``.npz`` artifact —
   discretizer cut points, signature vocabulary, Bloom filter bits,
   LSTM weights and the chosen ``k`` all travel together.
2. Load the artifact in a "fresh process" and verify detection is
   bit-identical to the in-memory original.
3. Monitor a live stream, checkpoint the running engine mid-stream,
   "crash", resume from the checkpoint — and verify the resumed verdicts
   are bit-identical to an uninterrupted run.

The same flow is scriptable from the shell::

    python -m repro train  --profile ci --out detector.npz
    python -m repro detect --model detector.npz --stop-after 500 \
        --checkpoint monitor.npz
    python -m repro resume --checkpoint monitor.npz

Run:  python examples/save_load_resume.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    CombinedDetector,
    DatasetConfig,
    DetectorConfig,
    TimeSeriesDetectorConfig,
    generate_dataset,
    load_checkpoint,
    load_detector,
    save_checkpoint,
    save_detector,
)


def train(workdir: Path):
    print("=== 1. train once, save one artifact ===")
    dataset = generate_dataset(DatasetConfig(num_cycles=2000), seed=7)
    started = time.perf_counter()
    detector, artifacts = CombinedDetector.train(
        dataset.train_fragments,
        dataset.validation_fragments,
        DetectorConfig(
            timeseries=TimeSeriesDetectorConfig(hidden_sizes=(32,), epochs=4)
        ),
        rng=7,
    )
    train_seconds = time.perf_counter() - started

    artifact = workdir / "detector.npz"
    save_detector(detector, artifact, meta={"dataset": "gas-pipeline", "seed": 7})
    print(
        f"trained in {train_seconds:.1f}s: |S|={artifacts.vocabulary_size}, "
        f"k={artifacts.chosen_k}; artifact {artifact.stat().st_size / 1024:.0f} KB"
    )
    return dataset, detector, artifact, train_seconds


def reload_and_verify(dataset, detector, artifact, train_seconds):
    print("\n=== 2. cold-start a fresh monitor from the artifact ===")
    started = time.perf_counter()
    restored = load_detector(artifact)
    load_seconds = time.perf_counter() - started

    original = detector.detect(dataset.test_packages)
    loaded = restored.detect(dataset.test_packages)
    assert np.array_equal(original.is_anomaly, loaded.is_anomaly)
    assert np.array_equal(original.level, loaded.level)
    print(
        f"load took {load_seconds * 1000:.0f} ms "
        f"({train_seconds / load_seconds:.0f}x faster than retraining); "
        f"detection on {len(loaded)} packages is bit-identical"
    )
    return restored


def checkpoint_and_resume(dataset, detector, workdir: Path):
    print("\n=== 3. checkpoint a live monitor mid-stream, fail over ===")
    live_traffic = dataset.test_packages
    half = len(live_traffic) // 2

    # Reference: one engine that never stops.
    reference = detector.engine(1)
    expected = [reference.observe_batch([p]) for p in live_traffic]

    # The monitored deployment: crash halfway, checkpoint in hand.
    monitor = detector.engine(1)
    for package in live_traffic[:half]:
        monitor.observe_batch([package])
    checkpoint = workdir / "monitor.npz"
    save_checkpoint(monitor, checkpoint, meta={"offset": half})
    print(f"checkpointed after {half} packages -> {checkpoint.name}")

    # Fail-over process: restore and finish the stream.
    resumed = load_checkpoint(checkpoint)
    for i, package in enumerate(live_traffic[half:], start=half):
        verdicts, levels = resumed.observe_batch([package])
        assert bool(verdicts[0]) == bool(expected[i][0][0])
        assert int(levels[0]) == int(expected[i][1][0])
    print(
        f"resumed verdicts for the remaining {len(live_traffic) - half} "
        "packages are bit-identical to the uninterrupted monitor"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        dataset, detector, artifact, train_seconds = train(workdir)
        reload_and_verify(dataset, detector, artifact, train_seconds)
        checkpoint_and_resume(dataset, detector, workdir)


if __name__ == "__main__":
    main()
