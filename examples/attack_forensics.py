"""Attack forensics: which attacks hide from which detection level?

Reproduces the paper's §VIII-D analysis: physical-process attacks (CMRI,
MSCI, MPCI) partly disappear into natural process noise, while protocol
attacks (MFCI, Recon) die at the signature level.  For every attack type
the script shows how detections split between the Bloom filter (unknown
signature) and the LSTM (unexpected signature-in-context) — and what a
coarser discretization does to that split.

Run:  python examples/attack_forensics.py
"""

import numpy as np

from repro import (
    CombinedDetector,
    DatasetConfig,
    DetectorConfig,
    DiscretizationConfig,
    TimeSeriesDetectorConfig,
    generate_dataset,
)
from repro.core.combined import LEVEL_PACKAGE, LEVEL_TIMESERIES
from repro.ics import ATTACK_NAMES


def analyse(name: str, discretization: DiscretizationConfig, dataset) -> None:
    config = DetectorConfig(
        discretization=discretization,
        timeseries=TimeSeriesDetectorConfig(hidden_sizes=(48,), epochs=12),
    )
    detector, artifacts = CombinedDetector.train(
        dataset.train_fragments, dataset.validation_fragments, config, rng=3
    )
    result = detector.detect(dataset.test_packages)
    labels = np.array([p.label for p in dataset.test_packages])

    print(f"\n--- {name} ---")
    print(
        f"signatures={artifacts.vocabulary_size}  "
        f"package-level validation error={artifacts.package_validation_error:.4f}  "
        f"k={artifacts.chosen_k}"
    )
    print(f"{'attack':<8}{'packages':>9}{'caught':>8}{'by bloom':>10}{'by lstm':>9}")
    for attack_id in sorted(set(labels) - {0}):
        mask = labels == attack_id
        caught = result.is_anomaly & mask
        bloom = int(((result.level == LEVEL_PACKAGE) & mask).sum())
        lstm = int(((result.level == LEVEL_TIMESERIES) & mask).sum())
        print(
            f"{ATTACK_NAMES[attack_id]:<8}{int(mask.sum()):>9}"
            f"{int(caught.sum()):>8}{bloom:>10}{lstm:>9}"
        )


def main() -> None:
    dataset = generate_dataset(DatasetConfig(num_cycles=4000), seed=3)
    print("dataset:", dataset.summary())

    # The paper's Table-III granularity ...
    analyse("Table III granularity (20/10)", DiscretizationConfig(), dataset)
    # ... versus a deliberately coarse one: fewer false positives, but
    # the content-level detector goes blind to parameter manipulation —
    # exactly the trade-off of paper §IV-B.
    analyse(
        "coarse granularity (5/3)",
        DiscretizationConfig(pressure_bins=5, setpoint_bins=3),
        dataset,
    )


if __name__ == "__main__":
    main()
