"""Quickstart: train the two-level detector and score a test stream.

Generates a gas pipeline SCADA capture (the simulator reproduces the
Morris et al. testbed the paper evaluates on), trains the combined
Bloom-filter + stacked-LSTM framework on its anomaly-free portion, and
reports the paper's four metrics on the held-out attack traffic.

Run:  python examples/quickstart.py
"""

from repro import (
    CombinedDetector,
    DatasetConfig,
    DetectorConfig,
    TimeSeriesDetectorConfig,
    evaluate_detection,
    generate_dataset,
    per_attack_recall,
)
from repro.ics import ATTACK_NAMES


def main() -> None:
    # 1. A labelled capture: ~5k cycles of Modbus polling with the seven
    #    Table-II attack types interleaved.
    dataset = generate_dataset(DatasetConfig(num_cycles=5000), seed=42)
    print("dataset:", dataset.summary())

    # 2. Train both levels on anomaly-free traffic only.  The framework
    #    tunes its own parameters (discretization is Table III's, k comes
    #    from the validation top-k error curve).
    config = DetectorConfig(
        timeseries=TimeSeriesDetectorConfig(hidden_sizes=(64, 64), epochs=15)
    )
    detector, artifacts = CombinedDetector.train(
        dataset.train_fragments, dataset.validation_fragments, config, rng=42
    )
    print(
        f"signature database: {artifacts.vocabulary_size} signatures, "
        f"package-level validation error "
        f"{artifacts.package_validation_error:.4f}, chosen k={artifacts.chosen_k}"
    )

    # 3. Detect over the raw test stream, package by package.
    result = detector.detect(dataset.test_packages)
    labels = [p.label for p in dataset.test_packages]
    print("metrics:", evaluate_detection(labels, result.is_anomaly))
    print(
        f"caught at package level: {result.package_level_count}, "
        f"at time-series level: {result.timeseries_level_count}"
    )
    for attack_id, recall in per_attack_recall(labels, result.is_anomaly).items():
        print(f"  {ATTACK_NAMES[attack_id]:<6} detected ratio = {recall:.2f}")


if __name__ == "__main__":
    main()
