"""ARFF interchange: archive a capture, reload it, train from the file.

The original gas pipeline dataset ships as ARFF; this example shows the
same round trip with our simulator — generate a capture, write it to
ARFF (identical schema, ``'?'`` missing values), read it back, rebuild
the training fragments with the paper's protocol, and verify a detector
trained from the archived file behaves identically.

Run:  python examples/arff_interchange.py
"""

import tempfile
from pathlib import Path

from repro import DatasetConfig, generate_dataset
from repro.core.combined import CombinedDetector, DetectorConfig
from repro.core.timeseries_detector import TimeSeriesDetectorConfig
from repro.ics import read_arff, write_arff
from repro.ics.dataset import split_into_fragments


def main() -> None:
    dataset = generate_dataset(DatasetConfig(num_cycles=2500), seed=21)

    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "gas_pipeline_capture.arff"
        write_arff(dataset.all_packages, path)
        print(f"wrote {len(dataset.all_packages)} packages to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KB)")

        restored = read_arff(path)
        assert len(restored) == len(dataset.all_packages)
        print("reloaded capture; labels preserved:",
              sum(1 for p in restored if p.is_attack), "attack packages")

        # Rebuild the paper's splits from the archived stream.
        train_end = int(len(restored) * 0.6)
        val_end = int(len(restored) * 0.8)
        train_fragments = split_into_fragments(restored[:train_end], min_len=10)
        val_fragments = split_into_fragments(restored[train_end:val_end], min_len=10)
        test_packages = restored[val_end:]
        print(f"fragments: train={len(train_fragments)}, val={len(val_fragments)}")

        detector, artifacts = CombinedDetector.train(
            train_fragments,
            val_fragments,
            DetectorConfig(
                timeseries=TimeSeriesDetectorConfig(hidden_sizes=(32,), epochs=8)
            ),
            rng=21,
        )
        result = detector.detect(test_packages)
        print(
            f"trained from ARFF: {artifacts.vocabulary_size} signatures, "
            f"k={artifacts.chosen_k}, "
            f"{int(result.is_anomaly.sum())} alerts on {len(test_packages)} packages"
        )


if __name__ == "__main__":
    main()
